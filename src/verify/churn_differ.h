#ifndef MOTTO_VERIFY_CHURN_DIFFER_H_
#define MOTTO_VERIFY_CHURN_DIFFER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ccl/pattern.h"
#include "common/result.h"
#include "event/stream.h"
#include "motto/churn.h"
#include "verify/differ.h"
#include "verify/fuzzer.h"

namespace motto::verify {

struct ChurnDifferOptions {
  /// Root seed; iteration i fuzzes with case seed `seed + i`.
  uint64_t seed = 1;
  int iterations = 20;
  /// Shape of the initial fuzzed workload and stream.
  FuzzOptions fuzz;
  /// Queries added mid-stream per case (named "c0", "c1", ...).
  int added_queries = 2;
  /// Queries removed mid-stream per case (drawn from initial and added).
  int removals = 2;
  /// Shard count for the sharded oracle path.
  int shards = 5;
  int shard_threads = 2;
  /// Planner settings for the churn run's incremental re-solves.
  double exact_budget_seconds = 0.5;
  int sa_iterations = 600;
};

/// Migration-equivalence check of one (initial workload, churn script,
/// stream) case: runs the live churn path in both evaluation-order modes and
/// diffs every user query's match multiset against a from-scratch oracle —
/// the query compiled alone (NA plan) and replayed over exactly its live
/// window's slice of the stream, via the single-threaded executor and, as a
/// cross-check, the sharded executor. For a query removed at T_r the oracle
/// keeps only matches whose fate was sealed before T_r (negation-deferred
/// roots: begin + window < T_r; immediate roots seal on completion, which
/// the slice already bounds), so "removed queries emit nothing past their
/// remove point" is part of the multiset equality.
Result<CaseReport> CheckChurnCase(const std::vector<Query>& initial,
                                  const ChurnScript& script,
                                  const EventStream& stream,
                                  EventTypeRegistry* registry,
                                  const ChurnDifferOptions& options);

struct ChurnDiffOutcome {
  int iterations = 0;
  /// Cases skipped because the fuzzed stream was too short to schedule the
  /// script inside it.
  int skipped = 0;
  /// One human-readable report per failing case (with its seed).
  std::vector<std::string> failures;
  bool ok() const { return failures.empty(); }
};

/// The churn fuzz loop: per iteration, fuzzes an initial workload + stream,
/// derives a deterministic add/remove script spanning the stream, and runs
/// CheckChurnCase.
Result<ChurnDiffOutcome> RunChurnDiffer(const ChurnDifferOptions& options);

}  // namespace motto::verify

#endif  // MOTTO_VERIFY_CHURN_DIFFER_H_
