#include "verify/fuzzer.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/check.h"

namespace motto::verify {

QueryFuzzer::QueryFuzzer(EventTypeRegistry* registry, FuzzOptions options,
                         uint64_t seed)
    : registry_(registry), options_(std::move(options)), rng_(seed) {
  MOTTO_CHECK_GT(options_.num_event_types, 0) << "empty fuzz alphabet";
  for (int i = 0; i < options_.num_event_types; ++i) {
    types_.push_back(registry_->RegisterPrimitive("E" + std::to_string(i)));
  }
}

PatternExpr QueryFuzzer::RandomLeaf(bool allow_predicate) {
  EventTypeId type = types_[static_cast<size_t>(
      rng_.Uniform(0, static_cast<int64_t>(types_.size()) - 1))];
  if (allow_predicate && rng_.Bernoulli(options_.predicate_prob)) {
    Comparison comparison;
    comparison.field = rng_.Bernoulli(0.5) ? PredicateField::kValue
                                           : PredicateField::kAux;
    comparison.cmp = static_cast<PredicateCmp>(rng_.Uniform(0, 5));
    // Integer constants inside the generated payload ranges, so every
    // comparison operator (including ==) has satisfiable draws and the
    // "%.10g" printer round-trips the constant exactly.
    comparison.constant = static_cast<double>(
        comparison.field == PredicateField::kValue ? rng_.Uniform(0, 100)
                                                   : rng_.Uniform(0, 1000));
    return PatternExpr::Leaf(type, Predicate({comparison}));
  }
  return PatternExpr::Leaf(type);
}

PatternExpr QueryFuzzer::RandomOperator(int depth, bool outermost) {
  PatternOp op = static_cast<PatternOp>(rng_.Uniform(0, 2));
  // Parser normal form: >= 2 children (a single-child operator with no NEG
  // collapses to its child when re-parsed).
  int num_children = static_cast<int>(rng_.Uniform(2, 3));
  std::vector<PatternExpr> children;
  for (int i = 0; i < num_children; ++i) {
    bool nest = depth < options_.max_depth &&
                rng_.Bernoulli(options_.nested_prob);
    children.push_back(nest ? RandomOperator(depth + 1, /*outermost=*/false)
                            : RandomLeaf(/*allow_predicate=*/true));
  }
  std::vector<PatternExpr> negated;
  bool may_negate = op != PatternOp::kDisj &&
                    (outermost || options_.allow_inner_negation);
  if (may_negate && rng_.Bernoulli(options_.negation_prob)) {
    // Distinct types per NEG list (ValidatePattern rejects duplicates).
    std::set<EventTypeId> seen;
    int num_negated = rng_.Bernoulli(0.25) ? 2 : 1;
    for (int i = 0; i < num_negated; ++i) {
      PatternExpr leaf = RandomLeaf(/*allow_predicate=*/true);
      if (seen.insert(leaf.leaf_type()).second) {
        negated.push_back(std::move(leaf));
      }
    }
  }
  return PatternExpr::Operator(op, std::move(children), std::move(negated));
}

PatternExpr QueryFuzzer::NextPattern() {
  return RandomOperator(0, /*outermost=*/true);
}

Query QueryFuzzer::NextQuery(const std::string& name) {
  Query query;
  query.name = name;
  query.pattern = NextPattern();
  // Window classes from a single microsecond to far beyond the stream's
  // whole span; the expected span is num_events * max_gap / 2.
  Duration span = std::max<Duration>(
      2, static_cast<Duration>(options_.num_events) * options_.max_gap / 2);
  switch (rng_.Uniform(0, 3)) {
    case 0:
      query.window = rng_.Uniform(1, 4);
      break;
    case 1:
      query.window = rng_.Uniform(1, std::max<Duration>(2, span / 4));
      break;
    case 2:
      query.window = rng_.Uniform(span / 4 + 1, span);
      break;
    default:
      query.window = rng_.Uniform(span, span * 2);
      break;
  }
  return query;
}

EventStream QueryFuzzer::NextStream() {
  EventStream stream;
  stream.reserve(static_cast<size_t>(options_.num_events));
  Timestamp ts = rng_.Uniform(0, 3);
  for (int i = 0; i < options_.num_events; ++i) {
    if (i > 0 && !rng_.Bernoulli(options_.ts_collision_prob)) {
      ts += rng_.Uniform(1, options_.max_gap);
    }
    Payload payload;
    payload.value = static_cast<double>(rng_.Uniform(0, 100));
    payload.aux = rng_.Uniform(0, 1000);
    EventTypeId type = types_[static_cast<size_t>(
        rng_.Uniform(0, static_cast<int64_t>(types_.size()) - 1))];
    stream.push_back(Event::Primitive(type, ts, payload));
  }
  return stream;
}

FuzzCase QueryFuzzer::Next() {
  FuzzCase c;
  for (int i = 0; i < options_.num_queries; ++i) {
    c.queries.push_back(NextQuery("q" + std::to_string(i + 1)));
  }
  c.stream = NextStream();
  return c;
}

}  // namespace motto::verify
