#include "verify/recovery_differ.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "common/rng.h"
#include "engine/executor.h"
#include "engine/sharded_executor.h"
#include "event/event.h"
#include "motto/optimizer.h"
#include "serve/checkpoint.h"
#include "serve/server.h"
#include "serve/wire.h"
#include "verify/oracle.h"

namespace motto::verify {
namespace fs = std::filesystem;
namespace {

using serve::Frame;
using serve::FrameType;
using serve::ServeCore;
using serve::ServeOptions;

void Diff(const std::string& path, const std::string& query,
          const MatchSet& oracle, const MatchSet& got,
          std::vector<Mismatch>* out) {
  if (oracle == got) return;
  Mismatch m;
  m.query = query;
  m.path = path;
  m.oracle_count = oracle.size();
  m.path_count = got.size();
  constexpr size_t kSampleCap = 4;
  std::set_difference(oracle.begin(), oracle.end(), got.begin(), got.end(),
                      std::back_inserter(m.missing));
  std::set_difference(got.begin(), got.end(), oracle.begin(), oracle.end(),
                      std::back_inserter(m.extra));
  if (m.missing.size() > kSampleCap) m.missing.resize(kSampleCap);
  if (m.extra.size() > kSampleCap) m.extra.resize(kSampleCap);
  out->push_back(std::move(m));
}

std::map<std::string, MatchSet> RunToSets(const RunResult& run) {
  std::map<std::string, MatchSet> sets;
  for (const auto& [sink, events] : run.sink_events) {
    MatchSet& set = sets[sink];
    for (const Event& e : events) set.insert(e.Fingerprint());
  }
  return sets;
}

/// One frame of the generated connection plus the number of event frames
/// that precede it — the resume arithmetic: after recovering at ingested
/// count R, event frames with ordinal > R and control frames with
/// ordinal >= R are re-fed (re-feeding an already-applied watermark, flush
/// or checkpoint is harmless by design; re-feeding an event is not).
struct GenFrame {
  Frame frame;
  uint64_t ordinal = 0;
};

/// Renders the fuzzed stream as a frame sequence with randomized control
/// frames: registrations up front, then events interleaved with watermarks
/// (never ahead of event time), flushes, and explicit checkpoint requests.
/// No kEnd frame — the feed loop calls Finish() when it runs off the end.
std::vector<GenFrame> GenerateFrames(const EventStream& stream,
                                     const EventTypeRegistry& registry,
                                     uint64_t frame_seed) {
  Rng rng(frame_seed);
  std::vector<GenFrame> frames;
  for (EventTypeId id = 0; id < registry.size(); ++id) {
    Frame reg;
    reg.type = FrameType::kRegisterType;
    reg.wire_type = static_cast<uint32_t>(id);
    reg.is_primitive = registry.IsPrimitive(id);
    reg.name = registry.NameOf(id);
    frames.push_back({std::move(reg), 0});
  }
  uint64_t ordinal = 0;
  for (const Event& event : stream) {
    Frame ev;
    ev.type = FrameType::kEvent;
    ev.wire_type = static_cast<uint32_t>(event.type());
    ev.ts = event.begin();
    ev.payload = event.payload();
    frames.push_back({std::move(ev), ++ordinal});
    if (rng.Bernoulli(0.12)) {
      Frame wm;
      wm.type = FrameType::kWatermark;
      wm.ts = event.begin();
      frames.push_back({std::move(wm), ordinal});
    }
    if (rng.Bernoulli(0.05)) {
      Frame flush;
      flush.type = FrameType::kFlush;
      frames.push_back({std::move(flush), ordinal});
    }
    if (rng.Bernoulli(0.04)) {
      Frame ck;
      ck.type = FrameType::kCheckpoint;
      frames.push_back({std::move(ck), ordinal});
    }
  }
  return frames;
}

/// Parses a per-connection match file into per-sink fingerprint multisets.
/// Only complete (newline-terminated) lines count — a torn tail is exactly
/// what recovery is allowed to discard.
std::map<std::string, MatchSet> ReadOutputSets(const std::string& path) {
  std::map<std::string, MatchSet> sets;
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return sets;
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  size_t pos = 0;
  while (true) {
    size_t eol = content.find('\n', pos);
    if (eol == std::string::npos) break;  // Torn tail (or end of file).
    std::string_view line(content.data() + pos, eol - pos);
    pos = eol + 1;
    size_t t1 = line.find('\t');
    size_t t3 = line.rfind('\t');
    if (t1 == std::string_view::npos || t3 == std::string_view::npos ||
        t3 <= t1) {
      continue;
    }
    sets[std::string(line.substr(0, t1))].insert(
        std::string(line.substr(t3 + 1)));
  }
  return sets;
}

MatchSet FlattenSets(const std::map<std::string, MatchSet>& sets) {
  MatchSet all;
  for (const auto& [sink, set] : sets) {
    for (const std::string& fp : set) all.insert(sink + "\t" + fp);
  }
  return all;
}

/// Latest parseable snapshot in `dir`, or nullopt. Used by the disk-damage
/// mutations to find what recovery will actually anchor on.
std::optional<serve::LoadedCheckpoint> LatestValid(const std::string& dir) {
  Result<serve::LoadedCheckpoint> loaded = serve::LoadLatestCheckpoint(dir);
  if (!loaded.ok()) return std::nullopt;
  return *std::move(loaded);
}

/// Byte offset just past the first `lines` complete lines of `content`.
size_t OffsetOfLine(const std::string& content, uint64_t lines) {
  size_t pos = 0;
  for (uint64_t i = 0; i < lines; ++i) {
    size_t eol = content.find('\n', pos);
    if (eol == std::string::npos) return content.size();
    pos = eol + 1;
  }
  return pos;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Forges a torn snapshot *newer* than the latest valid one: recovery must
/// skip it (with a warning) and fall back. With no valid snapshot at all, a
/// garbage file still must not be mistaken for one.
void TearCheckpoint(const std::string& ckpt_dir, Rng* rng) {
  std::optional<serve::LoadedCheckpoint> latest = LatestValid(ckpt_dir);
  uint64_t forged_seq = 0;
  std::string bytes = "MCKPgarbage-not-a-snapshot";
  if (latest.has_value()) {
    forged_seq = latest->state.seq + 1;
    std::string real = ReadFileBytes(latest->path);
    if (real.size() > 8) {
      // A truncated copy of a real snapshot: right magic, torn payload.
      bytes = real.substr(
          0, static_cast<size_t>(rng->Uniform(
                 8, static_cast<int64_t>(real.size()) - 1)));
    }
  }
  std::error_code ec;
  fs::create_directories(ckpt_dir, ec);
  WriteFileBytes(
      (fs::path(ckpt_dir) / serve::CheckpointFileName(forged_seq)).string(),
      bytes);
}

/// Tears the output file's tail the way a kill mid-append could: only bytes
/// past the latest valid snapshot's released-line horizon are fair game —
/// everything before it was durable before that snapshot existed, and
/// recovery re-reads those lines from the file itself.
void TearOutput(const std::string& ckpt_dir, const std::string& out_path,
                Rng* rng) {
  std::string content = ReadFileBytes(out_path);
  if (content.empty()) return;
  uint64_t protected_lines = 0;
  std::optional<serve::LoadedCheckpoint> latest = LatestValid(ckpt_dir);
  if (latest.has_value()) protected_lines = latest->state.released_lines;
  size_t lo = OffsetOfLine(content, protected_lines);
  if (lo >= content.size()) return;  // Nothing tearable past the horizon.
  size_t cut = static_cast<size_t>(
      rng->Uniform(static_cast<int64_t>(lo),
                   static_cast<int64_t>(content.size()) - 1));
  WriteFileBytes(out_path, std::string_view(content).substr(0, cut));
}

struct FeedResult {
  /// A kill fired (threshold reached or fault injection tripped); the core
  /// was abandoned mid-stream.
  bool killed = false;
  /// The stream ran to the end and Finish() succeeded.
  bool finished = false;
  Status error;  // Non-fault engine errors abort the case.
};

/// Feeds `frames` into a fresh core from its recovered resume offset,
/// simulating `kill` (if any). Plain kills abandon the core at an exact
/// frame boundary; mid-checkpoint kills arm the fault hook at the threshold
/// and abandon when the next checkpoint dies between rename and release.
FeedResult FeedUntil(ServeCore* core, const std::vector<GenFrame>& frames,
                     const RecoveryKill* kill) {
  FeedResult result;
  const uint64_t resume = core->ingested();
  bool armed = false;
  auto fault_tripped = [](const Status& s) {
    return s.message().find("fault injection") != std::string::npos;
  };
  if (kill != nullptr && kill->kind == RecoveryKill::Kind::kMidCheckpoint &&
      core->ingested() >= kill->after_events) {
    core->FailNextReleaseForTest();
    armed = true;
  }
  for (const GenFrame& gen : frames) {
    const bool is_event = gen.frame.type == FrameType::kEvent;
    // Registrations always replay: a reconnecting client re-sends its type
    // table (wire-encode --skip does the same), and the wire-id map lives
    // with the connection, not the snapshot.
    if (gen.frame.type != FrameType::kRegisterType &&
        (is_event ? gen.ordinal <= resume : gen.ordinal < resume)) {
      continue;
    }
    Result<bool> applied = core->OnFrame(gen.frame);
    if (!applied.ok()) {
      if (armed && fault_tripped(applied.status())) {
        result.killed = true;
        return result;
      }
      result.error = applied.status();
      return result;
    }
    if (kill != nullptr && core->ingested() >= kill->after_events) {
      if (kill->kind == RecoveryKill::Kind::kMidCheckpoint) {
        if (!armed) {
          core->FailNextReleaseForTest();
          armed = true;
        }
      } else if (is_event) {
        result.killed = true;  // SIGKILL at this frame boundary.
        return result;
      }
    }
  }
  Result<RunResult> finished = core->Finish();
  if (!finished.ok()) {
    if (armed && fault_tripped(finished.status())) {
      result.killed = true;  // Died inside the final checkpoint.
      return result;
    }
    result.error = finished.status();
    return result;
  }
  result.finished = true;
  return result;
}

ServeOptions MakeServeOptions(const RecoveryCaseSpec& spec,
                              const std::string& ckpt_dir,
                              const std::string& out_dir) {
  ServeOptions options;
  options.checkpoint_dir = ckpt_dir;
  options.checkpoint_interval = spec.checkpoint_interval;
  options.out_dir = out_dir;
  options.eval_order = spec.eval_order;
  options.optimizer.mode = OptimizerMode::kMotto;
  return options;
}

}  // namespace

std::string_view RecoveryKillKindName(RecoveryKill::Kind kind) {
  switch (kind) {
    case RecoveryKill::Kind::kPlain:
      return "plain";
    case RecoveryKill::Kind::kTornCheckpoint:
      return "torn-checkpoint";
    case RecoveryKill::Kind::kTornOutput:
      return "torn-output";
    case RecoveryKill::Kind::kMidCheckpoint:
      return "mid-checkpoint";
  }
  return "unknown";
}

Result<CaseReport> CheckRecoveryCase(const std::vector<Query>& queries,
                                     const EventStream& stream,
                                     EventTypeRegistry* registry,
                                     const RecoveryCaseSpec& spec) {
  CaseReport report;
  StreamStats stats = ComputeStats(stream);
  // Budget screen before any engine work: fuzzed workloads occasionally
  // explode combinatorially (broad DISJ/CONJ fanouts over wide windows),
  // and the blow-up hits the batch reference run itself — minutes of CPU
  // and gigabytes of partials before output ever gets compared. The
  // exponential-but-budgeted oracle detects that cheaply; kOutOfRange
  // bubbles up and the fuzz loop counts the case as skipped, exactly like
  // the plan differ.
  for (const Query& query : queries) {
    MOTTO_RETURN_IF_ERROR(OracleMatches(query, stream).status());
  }
  const std::vector<GenFrame> frames =
      GenerateFrames(stream, *registry, spec.frame_seed);

  // Reference 1: the batch Executor over the shared MOTTO plan. A registry
  // copy keeps the caller's registry pristine (the optimizer registers
  // composite types).
  OptimizerOptions optimizer_options;
  optimizer_options.mode = OptimizerMode::kMotto;
  EventTypeRegistry batch_registry = *registry;
  Optimizer optimizer(&batch_registry, stats, optimizer_options);
  MOTTO_ASSIGN_OR_RETURN(OptimizeOutcome outcome, optimizer.Optimize(queries));
  Jqp sharded_jqp = outcome.jqp;
  ExecutorOptions exec_options;
  exec_options.eval_order = spec.eval_order;
  MOTTO_ASSIGN_OR_RETURN(Executor executor,
                         Executor::Create(std::move(outcome.jqp)));
  MOTTO_ASSIGN_OR_RETURN(RunResult batch, executor.Run(stream, exec_options));
  std::map<std::string, MatchSet> oracle = RunToSets(batch);
  // Fuzzed workloads occasionally explode combinatorially (broad DISJ/CONJ
  // fanouts over wide windows). Replaying such a case through 4+ server
  // incarnations costs minutes and gigabytes for no extra coverage; skip it
  // the same way the plan differ treats oracle-budget overruns.
  size_t total_matches = 0;
  for (const auto& [sink, set] : oracle) total_matches += set.size();
  if (total_matches > 50000) {
    return OutOfRangeError("recovery: match budget exceeded (" +
                           std::to_string(total_matches) + " matches)");
  }

  // Reference 2: the sharded executor on the same plan.
  MOTTO_ASSIGN_OR_RETURN(
      ShardedExecutor sharded,
      ShardedExecutor::Create(std::move(sharded_jqp), spec.shards,
                              spec.threads));
  MOTTO_ASSIGN_OR_RETURN(RunResult sharded_run, sharded.Run(stream));
  std::map<std::string, MatchSet> sharded_sets = RunToSets(sharded_run);
  for (const auto& [sink, set] : oracle) {
    Diff("sharded", sink, set, sharded_sets[sink], &report.mismatches);
  }

  const fs::path case_dir(spec.case_dir);
  std::error_code ec;
  fs::remove_all(case_dir, ec);
  fs::create_directories(case_dir, ec);
  if (ec) {
    return InternalError("create case dir " + spec.case_dir + ": " +
                         ec.message());
  }

  // Reference 3: an uninterrupted server over the identical frame sequence.
  {
    const std::string ckpt = (case_dir / "ref-ckpt").string();
    const std::string out = (case_dir / "ref-out").string();
    MOTTO_ASSIGN_OR_RETURN(
        std::unique_ptr<ServeCore> core,
        ServeCore::Create(queries, *registry, stats,
                          MakeServeOptions(spec, ckpt, out)));
    FeedResult fed = FeedUntil(core.get(), frames, nullptr);
    if (!fed.error.ok()) return fed.error;
    std::map<std::string, MatchSet> clean =
        ReadOutputSets((fs::path(out) / "conn0.matches").string());
    for (const auto& [sink, set] : oracle) {
      Diff("serve-clean", sink, set, clean[sink], &report.mismatches);
    }
  }

  // The run under test: kill / damage / recover per the plan, then run the
  // remainder to completion and demand the batch multisets exactly.
  const std::string ckpt = (case_dir / "ckpt").string();
  const std::string out = (case_dir / "out").string();
  const std::string out_file = (fs::path(out) / "conn0.matches").string();
  Rng damage_rng(spec.frame_seed * 0x9e3779b97f4a7c15ull + 7);
  std::vector<MatchSet> durable_after_kill;
  size_t next_kill = 0;
  bool expect_torn_warning = false;
  for (int run = 0;; ++run) {
    if (run > static_cast<int>(spec.kills.size()) + 2) {
      return InternalError("recovery case failed to make progress");
    }
    MOTTO_ASSIGN_OR_RETURN(
        std::unique_ptr<ServeCore> core,
        ServeCore::Create(queries, *registry, stats,
                          MakeServeOptions(spec, ckpt, out)));
    if (expect_torn_warning) {
      bool warned = false;
      for (const std::string& w : core->recovery().warnings) {
        if (w.find("skipping") != std::string::npos) warned = true;
      }
      if (!warned) {
        Mismatch m;
        m.query = "(recovery)";
        m.path = "torn-checkpoint-warning";
        report.mismatches.push_back(std::move(m));
      }
      expect_torn_warning = false;
    }
    const RecoveryKill* kill =
        next_kill < spec.kills.size() ? &spec.kills[next_kill] : nullptr;
    FeedResult fed = FeedUntil(core.get(), frames, kill);
    if (!fed.error.ok()) return fed.error;
    if (fed.finished) break;
    // Killed: abandon the core, then apply this kill's disk damage before
    // the next incarnation recovers.
    core.reset();
    switch (kill->kind) {
      case RecoveryKill::Kind::kPlain:
      case RecoveryKill::Kind::kMidCheckpoint:
        break;
      case RecoveryKill::Kind::kTornCheckpoint:
        TearCheckpoint(ckpt, &damage_rng);
        expect_torn_warning = true;
        break;
      case RecoveryKill::Kind::kTornOutput:
        TearOutput(ckpt, out_file, &damage_rng);
        break;
    }
    durable_after_kill.push_back(FlattenSets(ReadOutputSets(out_file)));
    ++next_kill;
  }

  std::map<std::string, MatchSet> recovered = ReadOutputSets(out_file);
  for (const auto& [sink, set] : oracle) {
    Diff("serve-recovered", sink, set, recovered[sink], &report.mismatches);
  }
  for (const auto& [sink, set] : recovered) {
    if (oracle.find(sink) == oracle.end()) {
      Diff("serve-recovered", sink, MatchSet{}, set, &report.mismatches);
    }
  }

  // Output-commit discipline: everything durable at any kill must survive
  // into the final output (released means released, even across damage).
  MatchSet final_all = FlattenSets(recovered);
  for (size_t k = 0; k < durable_after_kill.size(); ++k) {
    if (std::includes(final_all.begin(), final_all.end(),
                      durable_after_kill[k].begin(),
                      durable_after_kill[k].end())) {
      continue;
    }
    Mismatch m;
    m.query = "(kill " + std::to_string(k) + ")";
    m.path = "durability";
    m.oracle_count = durable_after_kill[k].size();
    m.path_count = final_all.size();
    std::set_difference(durable_after_kill[k].begin(),
                        durable_after_kill[k].end(), final_all.begin(),
                        final_all.end(), std::back_inserter(m.missing));
    if (m.missing.size() > 4) m.missing.resize(4);
    report.mismatches.push_back(std::move(m));
  }

  fs::remove_all(case_dir, ec);
  return report;
}

Result<RecoveryOutcome> RunRecoveryDiffer(const RecoveryDifferOptions& options) {
  RecoveryOutcome outcome;
  fs::path work_root =
      options.work_dir.empty()
          ? fs::temp_directory_path() /
                ("motto-recovery-" + std::to_string(::getpid()) + "-" +
                 std::to_string(options.seed))
          : fs::path(options.work_dir);
  for (int iter = 0; iter < options.iterations; ++iter) {
    const uint64_t case_seed = options.seed + static_cast<uint64_t>(iter);
    EventTypeRegistry registry;
    QueryFuzzer fuzzer(&registry, options.fuzz, case_seed);
    FuzzCase base = fuzzer.Next();
    ++outcome.iterations;
    if (base.stream.size() < 8) continue;

    RecoveryCaseSpec spec;
    spec.eval_order = (iter % 2 == 0) ? EvalOrderMode::kArrival
                                      : EvalOrderMode::kSelectivity;
    spec.shards = options.shards;
    spec.threads = options.threads;
    spec.frame_seed = case_seed * 0x2545F4914F6CDD1Dull + 11;
    spec.case_dir =
        (work_root / ("case-" + std::to_string(case_seed))).string();
    Rng rng(case_seed * 0x9e3779b97f4a7c15ull + 3);
    spec.checkpoint_interval = static_cast<uint64_t>(rng.Uniform(4, 40));

    auto roll_kind = [&rng] {
      double r = rng.NextDouble();
      if (r < 0.45) return RecoveryKill::Kind::kPlain;
      if (r < 0.65) return RecoveryKill::Kind::kTornCheckpoint;
      if (r < 0.80) return RecoveryKill::Kind::kTornOutput;
      return RecoveryKill::Kind::kMidCheckpoint;
    };
    const int64_t n = static_cast<int64_t>(base.stream.size());
    RecoveryKill first;
    first.after_events = static_cast<uint64_t>(rng.Uniform(1, n));
    first.kind = roll_kind();
    spec.kills.push_back(first);
    if (rng.Bernoulli(0.35)) {
      RecoveryKill second;
      second.after_events = static_cast<uint64_t>(
          rng.Uniform(static_cast<int64_t>(first.after_events), n));
      second.kind = roll_kind();
      spec.kills.push_back(second);
    }
    auto checked = CheckRecoveryCase(base.queries, base.stream, &registry,
                                     spec);
    if (!checked.ok()) {
      if (checked.status().code() == StatusCode::kOutOfRange) {
        ++outcome.skipped;
        continue;
      }
      return Status(checked.status().code(),
                    "case seed " + std::to_string(case_seed) + ": " +
                        checked.status().message());
    }
    outcome.kills += spec.kills.size();
    for (const RecoveryKill& kill : spec.kills) {
      switch (kill.kind) {
        case RecoveryKill::Kind::kTornCheckpoint:
          ++outcome.torn_checkpoints;
          break;
        case RecoveryKill::Kind::kTornOutput:
          ++outcome.torn_outputs;
          break;
        case RecoveryKill::Kind::kMidCheckpoint:
          ++outcome.mid_checkpoint_faults;
          break;
        case RecoveryKill::Kind::kPlain:
          break;
      }
    }
    const CaseReport& report = *checked;
    if (report.ok()) continue;

    RecoveryFailure failure;
    failure.case_seed = case_seed;
    failure.report = report.ToString();
    std::ostringstream detail;
    detail << "eval-order="
           << (spec.eval_order == EvalOrderMode::kArrival ? "arrival"
                                                          : "selectivity")
           << " interval=" << spec.checkpoint_interval << " kills=[";
    for (size_t k = 0; k < spec.kills.size(); ++k) {
      if (k > 0) detail << ", ";
      detail << RecoveryKillKindName(spec.kills[k].kind) << "@"
             << spec.kills[k].after_events;
    }
    detail << "] stream=" << base.stream.size() << " events";
    failure.detail = detail.str();
    outcome.failures.push_back(std::move(failure));
  }
  std::error_code ec;
  fs::remove_all(work_root, ec);
  return outcome;
}

}  // namespace motto::verify
