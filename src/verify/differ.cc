#include "verify/differ.h"

#include <algorithm>
#include <iterator>
#include <map>
#include <set>
#include <utility>

#include "engine/executor.h"
#include "engine/parallel_executor.h"
#include "engine/sharded_executor.h"
#include "event/event.h"
#include "motto/optimizer.h"
#include "workload/io.h"

namespace motto::verify {
namespace {

using PathMatches = std::map<std::string, MatchSet>;

/// Reduces one executor run to per-user-query fingerprint multisets. NA
/// plans also register sinks for inner "name#inN" sub-queries; only the
/// user-facing names are compared.
PathMatches SinkMatches(const RunResult& run,
                        const std::vector<Query>& queries) {
  PathMatches out;
  for (const Query& query : queries) {
    MatchSet& set = out[query.name];
    auto it = run.sink_events.find(query.name);
    if (it == run.sink_events.end()) continue;
    for (const Event& e : it->second) set.insert(e.Fingerprint());
  }
  return out;
}

Result<RunResult> RunJqp(const Jqp& jqp, const EventStream& stream,
                         EvalOrderMode eval_order = EvalOrderMode::kArrival) {
  MOTTO_ASSIGN_OR_RETURN(Executor executor, Executor::Create(jqp));
  ExecutorOptions run_options;
  run_options.eval_order = eval_order;
  return executor.Run(stream, run_options);
}

Result<OptimizeOutcome> OptimizePlan(const std::vector<Query>& queries,
                                     EventTypeRegistry* registry,
                                     const StreamStats& stats,
                                     OptimizerMode mode,
                                     const DifferOptions& options,
                                     bool approximate) {
  OptimizerOptions opt;
  opt.mode = mode;
  opt.planner.seed = options.seed;
  opt.planner.exact_budget_seconds = options.exact_budget_seconds;
  opt.planner.sa_iterations = options.sa_iterations;
  opt.planner.force_approximate = approximate;
  Optimizer optimizer(registry, stats, opt);
  return optimizer.Optimize(queries);
}

void Diff(const std::string& path, const std::string& query,
          const MatchSet& oracle, const MatchSet& got,
          std::vector<Mismatch>* out) {
  if (oracle == got) return;
  Mismatch m;
  m.query = query;
  m.path = path;
  m.oracle_count = oracle.size();
  m.path_count = got.size();
  constexpr size_t kSampleCap = 4;
  std::set_difference(oracle.begin(), oracle.end(), got.begin(), got.end(),
                      std::back_inserter(m.missing));
  std::set_difference(got.begin(), got.end(), oracle.begin(), oracle.end(),
                      std::back_inserter(m.extra));
  if (m.missing.size() > kSampleCap) m.missing.resize(kSampleCap);
  if (m.extra.size() > kSampleCap) m.extra.resize(kSampleCap);
  out->push_back(std::move(m));
}

}  // namespace

std::string CaseReport::ToString() const {
  if (mismatches.empty()) return "all paths agree\n";
  std::string out;
  for (const Mismatch& m : mismatches) {
    out += "query " + m.query + " path " + m.path + ": oracle " +
           std::to_string(m.oracle_count) + " matches, path " +
           std::to_string(m.path_count) + "\n";
    for (const std::string& fp : m.missing) out += "  missing " + fp + "\n";
    for (const std::string& fp : m.extra) out += "  extra   " + fp + "\n";
  }
  return out;
}

Result<CaseReport> CheckCase(const std::vector<Query>& queries,
                             const EventStream& stream,
                             EventTypeRegistry* registry,
                             const DifferOptions& options) {
  PathMatches oracle;
  for (const Query& query : queries) {
    MOTTO_ASSIGN_OR_RETURN(oracle[query.name],
                           OracleMatches(query, stream, options.oracle));
  }
  StreamStats stats = ComputeStats(stream);

  std::vector<std::pair<std::string, PathMatches>> paths;

  // Path "matcher": each query compiled alone (NA, one chain), the closest
  // the executor gets to a bare NFA run per query.
  {
    PathMatches matches;
    for (const Query& query : queries) {
      MOTTO_ASSIGN_OR_RETURN(
          OptimizeOutcome outcome,
          OptimizePlan({query}, registry, stats, OptimizerMode::kNa, options,
                       /*approximate=*/false));
      MOTTO_ASSIGN_OR_RETURN(RunResult run, RunJqp(outcome.jqp, stream));
      PathMatches one = SinkMatches(run, {query});
      matches[query.name] = std::move(one[query.name]);
    }
    paths.emplace_back("matcher", std::move(matches));
  }

  // Path "unshared": the whole workload as independent chains.
  {
    MOTTO_ASSIGN_OR_RETURN(
        OptimizeOutcome outcome,
        OptimizePlan(queries, registry, stats, OptimizerMode::kNa, options,
                     /*approximate=*/false));
    MOTTO_ASSIGN_OR_RETURN(RunResult run, RunJqp(outcome.jqp, stream));
    paths.emplace_back("unshared", SinkMatches(run, queries));

    // Path "unshared-lazy": the same chains with every eligible node
    // evaluated in its planner-chosen selectivity order — the minimal
    // eager-vs-lazy differential, no sharing rewrites in the way.
    MOTTO_ASSIGN_OR_RETURN(
        RunResult lazy_run,
        RunJqp(outcome.jqp, stream, EvalOrderMode::kSelectivity));
    paths.emplace_back("unshared-lazy", SinkMatches(lazy_run, queries));
  }

  // Paths "motto-bnb" / "motto-par": the fully optimized JQP from the exact
  // branch-and-bound solve, single-threaded and through the pipelined
  // parallel executor (tiny batches so fuzz streams cross many batch
  // boundaries).
  {
    MOTTO_ASSIGN_OR_RETURN(
        OptimizeOutcome outcome,
        OptimizePlan(queries, registry, stats, OptimizerMode::kMotto, options,
                     /*approximate=*/false));
    MOTTO_ASSIGN_OR_RETURN(RunResult run, RunJqp(outcome.jqp, stream));
    paths.emplace_back("motto-bnb", SinkMatches(run, queries));

    // Path "motto-lazy": the same fully rewritten plan in selectivity
    // order. Lazy buffering must survive composite operands, merge nodes
    // and selector predicates, not just bare per-query chains.
    MOTTO_ASSIGN_OR_RETURN(
        RunResult lazy_run,
        RunJqp(outcome.jqp, stream, EvalOrderMode::kSelectivity));
    paths.emplace_back("motto-lazy", SinkMatches(lazy_run, queries));

    MOTTO_ASSIGN_OR_RETURN(
        ParallelExecutor parallel,
        ParallelExecutor::Create(outcome.jqp, options.threads,
                                 options.batch_size, /*pipe_depth=*/2));
    MOTTO_ASSIGN_OR_RETURN(RunResult parallel_run, parallel.Run(stream));
    paths.emplace_back("motto-par", SinkMatches(parallel_run, queries));

    // Path "motto-shard": the same exact JQP through the sharded
    // data-parallel executor. More shards than the plan has components
    // forces time-sliced replicas, so attribution keys, warm-up context and
    // the tie-safe slicer are all on the hook here.
    MOTTO_ASSIGN_OR_RETURN(
        ShardedExecutor sharded,
        ShardedExecutor::Create(outcome.jqp, options.shards,
                                /*num_threads=*/2));
    MOTTO_ASSIGN_OR_RETURN(RunResult sharded_run, sharded.Run(stream));
    paths.emplace_back("motto-shard", SinkMatches(sharded_run, queries));
  }

  // Path "motto-sa": the plan the simulated-annealing solver picks. Its
  // sharing choices may differ from B&B's; its results must not.
  {
    MOTTO_ASSIGN_OR_RETURN(
        OptimizeOutcome outcome,
        OptimizePlan(queries, registry, stats, OptimizerMode::kMotto, options,
                     /*approximate=*/true));
    MOTTO_ASSIGN_OR_RETURN(RunResult run, RunJqp(outcome.jqp, stream));
    paths.emplace_back("motto-sa", SinkMatches(run, queries));
  }

  CaseReport report;
  for (const Query& query : queries) {
    for (const auto& [name, matches] : paths) {
      auto it = matches.find(query.name);
      static const MatchSet kEmpty;
      Diff(name, query.name, oracle[query.name],
           it == matches.end() ? kEmpty : it->second, &report.mismatches);
    }
  }
  return report;
}

namespace {

/// True when the case still fails (mismatch). Check errors — including
/// oracle budget exhaustion — conservatively count as "no longer failing"
/// so shrinking never walks into unevaluatable territory.
bool StillFails(const std::vector<Query>& queries, const EventStream& stream,
                EventTypeRegistry* registry, const DifferOptions& options,
                int* checks_left) {
  if (*checks_left <= 0) return false;
  --*checks_left;
  auto report = CheckCase(queries, stream, registry, options);
  return report.ok() && !report->ok();
}

}  // namespace

int ShrinkCase(std::vector<Query>* queries, EventStream* stream,
               EventTypeRegistry* registry, const DifferOptions& options) {
  int checks_left = options.max_shrink_checks;
  const int total = checks_left;

  // Drop whole queries first: fewer queries shrink every later re-check.
  for (size_t i = 0; i < queries->size() && queries->size() > 1;) {
    std::vector<Query> candidate = *queries;
    candidate.erase(candidate.begin() + static_cast<ptrdiff_t>(i));
    if (StillFails(candidate, *stream, registry, options, &checks_left)) {
      *queries = std::move(candidate);
    } else {
      ++i;
    }
  }

  // ddmin on the stream: remove contiguous chunks, halving the chunk size
  // when a pass removes nothing (removal keeps the stream sorted, so
  // candidates stay valid).
  size_t chunk = std::max<size_t>(1, stream->size() / 2);
  while (checks_left > 0) {
    bool removed = false;
    for (size_t start = 0; start < stream->size() && checks_left > 0;) {
      EventStream candidate;
      candidate.reserve(stream->size());
      size_t stop = std::min(stream->size(), start + chunk);
      candidate.insert(candidate.end(), stream->begin(),
                       stream->begin() + static_cast<ptrdiff_t>(start));
      candidate.insert(candidate.end(),
                       stream->begin() + static_cast<ptrdiff_t>(stop),
                       stream->end());
      if (!candidate.empty() &&
          StillFails(*queries, candidate, registry, options, &checks_left)) {
        *stream = std::move(candidate);
        removed = true;
      } else {
        start += chunk;
      }
    }
    if (!removed) {
      if (chunk == 1) break;
      chunk = std::max<size_t>(1, chunk / 2);
    }
  }
  return total - checks_left;
}

Result<DiffOutcome> RunDiffer(const DifferOptions& options) {
  DiffOutcome outcome;
  for (int i = 0; i < options.iterations; ++i) {
    uint64_t case_seed = options.seed + static_cast<uint64_t>(i);
    EventTypeRegistry registry;
    QueryFuzzer fuzzer(&registry, options.fuzz, case_seed);
    FuzzCase fuzz_case = fuzzer.Next();
    ++outcome.iterations;

    auto report = CheckCase(fuzz_case.queries, fuzz_case.stream, &registry,
                            options);
    if (!report.ok()) {
      if (report.status().code() == StatusCode::kOutOfRange) {
        ++outcome.skipped;
        continue;
      }
      return Status(report.status().code(),
                    "case seed " + std::to_string(case_seed) + ": " +
                        report.status().message());
    }
    if (report->ok()) continue;

    if (options.shrink) {
      ShrinkCase(&fuzz_case.queries, &fuzz_case.stream, &registry, options);
      // Re-derive the report for the minimized case (shrinking preserves
      // "some mismatch", not the specific one).
      auto minimized = CheckCase(fuzz_case.queries, fuzz_case.stream,
                                 &registry, options);
      if (minimized.ok() && !minimized->ok()) report = std::move(minimized);
    }

    Failure failure;
    failure.case_seed = case_seed;
    failure.workload_text = WorkloadToText(fuzz_case.queries, registry);
    failure.stream_csv = StreamToCsv(fuzz_case.stream, registry);
    failure.report = report->ToString();
    std::string stem = "case_" + std::to_string(case_seed);
    failure.repro = "motto verify --seed=" + std::to_string(case_seed) +
                    " --iters=1\nmotto verify --workload=" + stem +
                    ".ccl --stream=" + stem + ".csv\n";
    if (!options.dump_dir.empty()) {
      std::string base = options.dump_dir + "/" + stem;
      MOTTO_RETURN_IF_ERROR(
          SaveWorkloadFile(base + ".ccl", fuzz_case.queries, registry));
      MOTTO_RETURN_IF_ERROR(
          SaveStreamCsv(base + ".csv", fuzz_case.stream, registry));
    }
    outcome.failures.push_back(std::move(failure));
  }
  return outcome;
}

}  // namespace motto::verify
