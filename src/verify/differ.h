#ifndef MOTTO_VERIFY_DIFFER_H_
#define MOTTO_VERIFY_DIFFER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ccl/pattern.h"
#include "common/result.h"
#include "event/stream.h"
#include "verify/fuzzer.h"
#include "verify/oracle.h"

namespace motto::verify {

struct DifferOptions {
  /// Root seed. Iteration i of a run fuzzes with case seed `seed + i`, so
  /// `--seed=<seed+i> --iters=1` replays exactly that case.
  uint64_t seed = 1;
  int iterations = 100;
  FuzzOptions fuzz;
  /// Worker count and raw-batch size for the ParallelExecutor path; the
  /// batch size is deliberately tiny so fuzz streams span many pipeline
  /// batches.
  int threads = 3;
  size_t batch_size = 7;
  /// Shard count for the ShardedExecutor path. Fuzz workloads often reduce
  /// to a handful of components, so a count above that forces time-sliced
  /// replicas and drives match attribution across slice boundaries.
  int shards = 5;
  /// Shrink failing cases (query removal + ddmin on the stream) before
  /// reporting, bounded by this many re-checks per failure.
  bool shrink = true;
  int max_shrink_checks = 400;
  /// When non-empty, failures dump `<dir>/case_<seed>.ccl/.csv` repro files.
  std::string dump_dir;
  OracleOptions oracle;
  /// Planner settings for the two solver-backed paths.
  double exact_budget_seconds = 2.0;
  int sa_iterations = 600;
};

/// One query whose match multiset differs from the oracle on one path.
struct Mismatch {
  std::string query;
  std::string path;  // "matcher", "unshared", "motto-bnb", "motto-sa", ...
  size_t oracle_count = 0;
  size_t path_count = 0;
  /// Sample fingerprints present on only one side (capped).
  std::vector<std::string> missing;  // oracle has, path lacks
  std::vector<std::string> extra;    // path has, oracle lacks
};

struct CaseReport {
  std::vector<Mismatch> mismatches;
  bool ok() const { return mismatches.empty(); }
  std::string ToString() const;
};

/// Runs every execution path — oracle, per-query NFA matcher plans,
/// whole-workload unshared plan (in arrival order and in selectivity-
/// ordered lazy mode), MOTTO JQP from the exact solver (both eval modes),
/// MOTTO JQP from simulated annealing, and the parallel and sharded
/// executors over the exact JQP — on one (workload, stream) pair and diffs
/// all per-query match multisets against the oracle. kOutOfRange means the
/// oracle budget was exceeded (callers treat the case as skipped).
Result<CaseReport> CheckCase(const std::vector<Query>& queries,
                             const EventStream& stream,
                             EventTypeRegistry* registry,
                             const DifferOptions& options);

/// Minimizes a failing case in place: greedily drops whole queries, then
/// ddmin-shrinks the stream chunk by chunk, keeping every candidate that
/// still fails CheckCase. Returns the number of checks spent.
int ShrinkCase(std::vector<Query>* queries, EventStream* stream,
               EventTypeRegistry* registry, const DifferOptions& options);

/// A failing case, minimized and rendered self-contained (no registry
/// needed to consume it).
struct Failure {
  uint64_t case_seed = 0;
  std::string workload_text;
  std::string stream_csv;
  std::string report;
  /// Shell commands that replay the failure.
  std::string repro;
};

struct DiffOutcome {
  int iterations = 0;
  /// Cases skipped because the oracle exceeded its enumeration budget.
  int skipped = 0;
  std::vector<Failure> failures;
  bool ok() const { return failures.empty(); }
};

/// The differential fuzz loop: `iterations` fuzzed cases from the root
/// seed, each checked across all paths, failures shrunk and reported (and
/// dumped to `dump_dir` when set).
Result<DiffOutcome> RunDiffer(const DifferOptions& options);

}  // namespace motto::verify

#endif  // MOTTO_VERIFY_DIFFER_H_
