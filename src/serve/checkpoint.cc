#include "serve/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace motto::serve {

namespace fs = std::filesystem;

void PutEvent(std::string* out, const Event& event) {
  PutI32(out, event.type());
  PutI64(out, event.begin());
  PutI64(out, event.end());
  PutF64(out, event.payload().value);
  PutI64(out, event.payload().aux);
  PutU32(out, static_cast<uint32_t>(event.constituents().size()));
  for (const Constituent& c : event.constituents()) {
    PutI32(out, c.type);
    PutI64(out, c.ts);
    PutI32(out, c.slot);
  }
}

Event ReadEvent(ByteReader* reader) {
  EventTypeId type = reader->I32();
  Timestamp begin = reader->I64();
  Timestamp end = reader->I64();
  Payload payload;
  payload.value = reader->F64();
  payload.aux = reader->I64();
  uint32_t n = reader->U32();
  if (n == 0) {
    // Primitive: begin == end == ts, payload carried on the wire.
    return Event::Primitive(type, begin, payload);
  }
  std::vector<Constituent> parts;
  parts.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Constituent c;
    c.type = reader->I32();
    c.ts = reader->I64();
    c.slot = reader->I32();
    parts.push_back(c);
  }
  // Composites are matcher products and never carry a payload.
  return Event::Composite(type, std::move(parts), end, begin);
}

namespace {

void PutPartial(std::string* out, const NodePartialState& p) {
  PutI32(out, p.state);
  PutI64(out, p.min_begin);
  PutI64(out, p.max_end);
  PutI64(out, p.last_end);
  PutU32(out, static_cast<uint32_t>(p.constituents.size()));
  for (const Constituent& c : p.constituents) {
    PutI32(out, c.type);
    PutI64(out, c.ts);
    PutI32(out, c.slot);
  }
  PutU32(out, static_cast<uint32_t>(p.op_begin.size()));
  for (Timestamp t : p.op_begin) PutI64(out, t);
  PutU32(out, static_cast<uint32_t>(p.op_end.size()));
  for (Timestamp t : p.op_end) PutI64(out, t);
  PutU32(out, static_cast<uint32_t>(p.op_arrival.size()));
  for (uint64_t a : p.op_arrival) PutU64(out, a);
}

NodePartialState ReadPartial(ByteReader* reader) {
  NodePartialState p;
  p.state = reader->I32();
  p.min_begin = reader->I64();
  p.max_end = reader->I64();
  p.last_end = reader->I64();
  uint32_t n = reader->U32();
  p.constituents.reserve(n);
  for (uint32_t i = 0; i < n && !reader->failed(); ++i) {
    Constituent c;
    c.type = reader->I32();
    c.ts = reader->I64();
    c.slot = reader->I32();
    p.constituents.push_back(c);
  }
  n = reader->U32();
  for (uint32_t i = 0; i < n && !reader->failed(); ++i) {
    p.op_begin.push_back(reader->I64());
  }
  n = reader->U32();
  for (uint32_t i = 0; i < n && !reader->failed(); ++i) {
    p.op_end.push_back(reader->I64());
  }
  n = reader->U32();
  for (uint32_t i = 0; i < n && !reader->failed(); ++i) {
    p.op_arrival.push_back(reader->U64());
  }
  return p;
}

}  // namespace

void PutNodeState(std::string* out, const NodeState& state) {
  PutU8(out, state.stateless ? 1 : 0);
  PutU8(out, state.eval_mode == EvalOrderMode::kSelectivity ? 1 : 0);
  PutI64(out, state.watermark);
  PutU64(out, state.sweep_tick);
  PutU64(out, state.arrival_seq);
  PutU32(out, static_cast<uint32_t>(state.partials.size()));
  for (const NodePartialState& p : state.partials) PutPartial(out, p);
  PutU32(out, static_cast<uint32_t>(state.lazy_partials.size()));
  for (const NodePartialState& p : state.lazy_partials) PutPartial(out, p);
  PutU32(out, static_cast<uint32_t>(state.pending.size()));
  for (const NodePartialState& p : state.pending) PutPartial(out, p);
  PutU32(out, static_cast<uint32_t>(state.negated_history.size()));
  for (Timestamp t : state.negated_history) PutI64(out, t);
  PutU32(out, static_cast<uint32_t>(state.buffered.size()));
  for (const NodeBufferedEvent& b : state.buffered) {
    PutI32(out, b.operand);
    PutI64(out, b.begin);
    PutI64(out, b.end);
    PutU64(out, b.arrival);
    PutEvent(out, b.event);
  }
}

NodeState ReadNodeState(ByteReader* reader) {
  NodeState state;
  state.stateless = reader->U8() != 0;
  state.eval_mode = reader->U8() != 0 ? EvalOrderMode::kSelectivity
                                      : EvalOrderMode::kArrival;
  state.watermark = reader->I64();
  state.sweep_tick = reader->U64();
  state.arrival_seq = reader->U64();
  uint32_t n = reader->U32();
  for (uint32_t i = 0; i < n && !reader->failed(); ++i) {
    state.partials.push_back(ReadPartial(reader));
  }
  n = reader->U32();
  for (uint32_t i = 0; i < n && !reader->failed(); ++i) {
    state.lazy_partials.push_back(ReadPartial(reader));
  }
  n = reader->U32();
  for (uint32_t i = 0; i < n && !reader->failed(); ++i) {
    state.pending.push_back(ReadPartial(reader));
  }
  n = reader->U32();
  for (uint32_t i = 0; i < n && !reader->failed(); ++i) {
    state.negated_history.push_back(reader->I64());
  }
  n = reader->U32();
  for (uint32_t i = 0; i < n && !reader->failed(); ++i) {
    NodeBufferedEvent b;
    b.operand = reader->I32();
    b.begin = reader->I64();
    b.end = reader->I64();
    b.arrival = reader->U64();
    b.event = ReadEvent(reader);
    state.buffered.push_back(std::move(b));
  }
  return state;
}

std::string SerializeCheckpoint(const CheckpointState& state) {
  std::string payload;
  PutU64(&payload, state.seq);
  PutU64(&payload, state.ingested);
  PutI64(&payload, state.watermark);
  PutU8(&payload,
        state.eval_mode == EvalOrderMode::kSelectivity ? 1 : 0);
  PutU32(&payload, state.connection);
  PutU64(&payload, state.released_lines);
  PutU32(&payload, static_cast<uint32_t>(state.sink_released.size()));
  for (const auto& [sink, count] : state.sink_released) {
    PutString(&payload, sink);
    PutU64(&payload, count);
  }
  PutU32(&payload, static_cast<uint32_t>(state.registry.size()));
  for (const RegistryEntry& entry : state.registry) {
    PutString(&payload, entry.name);
    PutU8(&payload, entry.is_primitive ? 1 : 0);
  }
  PutU32(&payload, static_cast<uint32_t>(state.nodes.size()));
  for (const auto& [key, node] : state.nodes) {
    PutString(&payload, key);
    PutNodeState(&payload, node);
  }
  PutU32(&payload, static_cast<uint32_t>(state.outbox.size()));
  for (const auto& [sink, event] : state.outbox) {
    PutString(&payload, sink);
    PutEvent(&payload, event);
  }

  std::string out;
  PutU32(&out, kCheckpointMagic);
  PutU32(&out, kCheckpointVersion);
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  out += payload;
  PutU32(&out, Crc32(payload));
  return out;
}

Result<CheckpointState> ParseCheckpoint(std::string_view bytes) {
  ByteReader header(bytes.data(), bytes.size());
  uint32_t magic = header.U32();
  uint32_t version = header.U32();
  uint32_t payload_len = header.U32();
  if (header.failed()) return InvalidArgumentError("truncated header");
  if (magic != kCheckpointMagic) return InvalidArgumentError("bad magic");
  if (version != kCheckpointVersion) {
    return InvalidArgumentError("unsupported checkpoint version " +
                                std::to_string(version));
  }
  if (bytes.size() < 12 + static_cast<size_t>(payload_len) + 4) {
    return InvalidArgumentError("truncated payload");
  }
  std::string_view payload = bytes.substr(12, payload_len);
  ByteReader crc_reader(bytes.data() + 12 + payload_len, 4);
  if (crc_reader.U32() != Crc32(payload)) {
    return InvalidArgumentError("payload CRC mismatch");
  }

  CheckpointState state;
  ByteReader reader(payload.data(), payload.size());
  state.seq = reader.U64();
  state.ingested = reader.U64();
  state.watermark = reader.I64();
  state.eval_mode = reader.U8() != 0 ? EvalOrderMode::kSelectivity
                                     : EvalOrderMode::kArrival;
  state.connection = reader.U32();
  state.released_lines = reader.U64();
  uint32_t n = reader.U32();
  for (uint32_t i = 0; i < n && !reader.failed(); ++i) {
    std::string sink = reader.String();
    uint64_t count = reader.U64();
    state.sink_released.emplace_back(std::move(sink), count);
  }
  n = reader.U32();
  for (uint32_t i = 0; i < n && !reader.failed(); ++i) {
    RegistryEntry entry;
    entry.name = reader.String();
    entry.is_primitive = reader.U8() != 0;
    state.registry.push_back(std::move(entry));
  }
  n = reader.U32();
  for (uint32_t i = 0; i < n && !reader.failed(); ++i) {
    std::string key = reader.String();
    NodeState node = ReadNodeState(&reader);
    state.nodes.emplace_back(std::move(key), std::move(node));
  }
  n = reader.U32();
  for (uint32_t i = 0; i < n && !reader.failed(); ++i) {
    std::string sink = reader.String();
    Event event = ReadEvent(&reader);
    state.outbox.emplace_back(std::move(sink), std::move(event));
  }
  if (reader.failed() || reader.remaining() > 0) {
    return InvalidArgumentError("malformed checkpoint payload");
  }
  return state;
}

std::string CheckpointFileName(uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "ckpt-%016llu.mck",
                static_cast<unsigned long long>(seq));
  return buf;
}

namespace {

Status WriteFileDurably(const fs::path& path, std::string_view bytes) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return InternalError("open " + path.string() + ": " +
                         std::strerror(errno));
  }
  size_t written = 0;
  while (written < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status status = InternalError("write " + path.string() + ": " +
                                    std::strerror(errno));
      ::close(fd);
      return status;
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    Status status = InternalError("fsync " + path.string() + ": " +
                                  std::strerror(errno));
    ::close(fd);
    return status;
  }
  ::close(fd);
  return Status::Ok();
}

void FsyncDir(const fs::path& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

/// Checkpoint files in `dir` sorted newest-first (names embed the seq).
std::vector<fs::path> ListCheckpoints(const std::string& dir) {
  std::vector<fs::path> files;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("ckpt-", 0) == 0 && name.size() > 4 &&
        name.compare(name.size() - 4, 4, ".mck") == 0) {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end(),
            [](const fs::path& a, const fs::path& b) {
              return a.filename().string() > b.filename().string();
            });
  return files;
}

}  // namespace

Status SaveCheckpoint(const std::string& dir, const CheckpointState& state,
                      int keep) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return InternalError("create checkpoint dir " + dir + ": " + ec.message());
  }
  fs::path final_path = fs::path(dir) / CheckpointFileName(state.seq);
  fs::path tmp_path = final_path;
  tmp_path += ".tmp";
  MOTTO_RETURN_IF_ERROR(
      WriteFileDurably(tmp_path, SerializeCheckpoint(state)));
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    return InternalError("rename " + tmp_path.string() + ": " + ec.message());
  }
  FsyncDir(dir);
  std::vector<fs::path> files = ListCheckpoints(dir);
  for (size_t i = static_cast<size_t>(keep < 1 ? 1 : keep); i < files.size();
       ++i) {
    fs::remove(files[i], ec);
  }
  return Status::Ok();
}

Result<LoadedCheckpoint> LoadLatestCheckpoint(const std::string& dir) {
  LoadedCheckpoint loaded;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return NotFoundError("no checkpoint directory " + dir);
  }
  for (const fs::path& path : ListCheckpoints(dir)) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream bytes;
    bytes << in.rdbuf();
    Result<CheckpointState> parsed = ParseCheckpoint(bytes.str());
    if (parsed.ok()) {
      loaded.state = std::move(parsed).value();
      loaded.path = path.string();
      return loaded;
    }
    loaded.warnings.push_back("skipping torn checkpoint " + path.string() +
                              " (" + parsed.status().message() + ")");
  }
  std::string detail;
  for (const std::string& w : loaded.warnings) detail += "; " + w;
  return NotFoundError("no valid checkpoint in " + dir + detail);
}

}  // namespace motto::serve
