#ifndef MOTTO_SERVE_STATUS_H_
#define MOTTO_SERVE_STATUS_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/time.h"
#include "engine/graph.h"
#include "obs/snapshot.h"
#include "serve/server.h"

namespace motto::serve {

/// Live serve telemetry (DESIGN.md §16). Three layers, split by thread:
///
///   engine thread:   ServeTelemetry::Tick — collects a MetricsSnapshot,
///                    joins it with per-query/per-node health read straight
///                    off the ServeCore (safe: same thread), publishes an
///                    immutable ServeStatus, appends one JSONL line to the
///                    stats log.
///   status thread:   StatusServer — a minimal HTTP/1.0 responder serving
///                    /metrics (Prometheus text), /statusz (JSON), /healthz
///                    from the *published* ServeStatus only. It never
///                    touches the live registry or the core.
///   any thread:      ServeStatus itself is immutable after publication.

/// Health of one user query, with shared-plan cost apportioned to it.
struct QueryHealth {
  std::string name;
  /// "live"   — emitted new matches in the last snapshot interval;
  /// "idle"   — has matched before, nothing new this interval;
  /// "starved"— never matched despite ingested events.
  std::string state = "idle";
  /// Matches accumulated by this process's session (since start/recovery).
  uint64_t matches = 0;
  /// Matches durably released to the output file (whole stream life).
  uint64_t released = 0;
  /// Matches held in the outbox awaiting the next checkpoint's release —
  /// the output-commit lag of this query.
  uint64_t outbox_lag = 0;
  /// Stream-time end of the last emitted match (min() = never emitted).
  Timestamp last_emit_ts = std::numeric_limits<Timestamp>::min();
  /// Estimated share of engine cost attributed to this query: each shared
  /// node's cost is split evenly across the queries reachable from it.
  double cpu_share = 0.0;
};

/// Health of one plan node, with its transitive owning queries.
struct NodeHealth {
  int32_t id = -1;
  std::string label;
  uint64_t events_in = 0;
  uint64_t events_out = 0;
  double busy_seconds = 0.0;
  double cost_share = 0.0;
  std::vector<std::string> queries;
};

/// One immutable published observation of a running server.
struct ServeStatus {
  std::shared_ptr<const obs::MetricsSnapshot> snapshot;

  uint64_t ingested = 0;
  Timestamp watermark = std::numeric_limits<Timestamp>::min();
  uint64_t checkpoints = 0;
  double checkpoint_age_seconds = 0.0;
  /// Seconds since the watermark last advanced (0 until it first moves).
  double watermark_idle_seconds = 0.0;
  uint32_t connection = 0;
  bool recovered = false;
  uint64_t recovery_imports_failed = 0;

  size_t queue_depth = 0;
  size_t queue_capacity = 0;
  size_t queue_max_depth = 0;
  uint64_t queue_shed = 0;

  double events_per_sec = 0.0;
  double matches_per_sec = 0.0;

  std::vector<QueryHealth> queries;
  std::vector<NodeHealth> nodes;

  /// Liveness verdict: false when the server ingests but the watermark has
  /// stalled past the telemetry stall threshold, or the ingest queue is
  /// saturated. `reason` (optional) gets a one-line explanation.
  bool Healthy(std::string* reason) const;

  /// Single-line JSON object (also the stats-log JSONL line).
  std::string ToStatuszJson() const;
  /// Prometheus text exposition format 0.0.4.
  std::string ToPrometheus() const;

  bool watermark_stalled = false;
  bool queue_saturated = false;
};

/// Per-node transitive query attribution: result[node] lists the sink
/// indexes whose output depends on that node. A node shared by k queries
/// appears in k sets; the cost apportioner divides its cost by k.
std::vector<std::vector<size_t>> NodeQuerySets(const Jqp& jqp);

struct TelemetryOptions {
  /// Time-driven snapshot cadence; <= 0 disables the timer (snapshots then
  /// only happen on force ticks or the event-count trigger).
  double snapshot_interval_seconds = 1.0;
  /// Also snapshot after this many newly ingested events (0 = off).
  uint64_t snapshot_every_events = 0;
  /// JSONL sink; one ToStatuszJson line per snapshot. Empty = off.
  std::string stats_log_path;
  /// Watermark stall threshold for /healthz.
  double stall_seconds = 5.0;
  size_t history = 64;
};

/// Engine-thread telemetry coordinator. Tick() must be called from the
/// thread driving the ServeCore; Latest() is safe from any thread.
class ServeTelemetry {
 public:
  /// `core` must outlive the telemetry object and have a metrics registry.
  ServeTelemetry(ServeCore* core, TelemetryOptions options);
  ~ServeTelemetry();
  ServeTelemetry(const ServeTelemetry&) = delete;
  ServeTelemetry& operator=(const ServeTelemetry&) = delete;

  /// Snapshot + publish when due (interval elapsed or enough new events);
  /// `force` skips the due check (startup, shutdown, checkpoint edges).
  void Tick(bool force = false);

  std::shared_ptr<const ServeStatus> Latest() const;

  /// Sticky first stats-log write error (telemetry must never kill serving,
  /// so failures park here instead of propagating).
  const Status& status() const { return status_; }

  uint64_t snapshots_taken() const { return snapshotter_.snapshots_taken(); }

 private:
  std::shared_ptr<const ServeStatus> Build();

  ServeCore* core_;
  TelemetryOptions options_;
  obs::MetricsSnapshotter snapshotter_;
  std::vector<std::vector<size_t>> node_queries_;
  std::FILE* stats_log_ = nullptr;
  Status status_;

  uint64_t last_snapshot_ingested_ = 0;
  Timestamp last_watermark_ = std::numeric_limits<Timestamp>::min();
  std::chrono::steady_clock::time_point last_watermark_change_;
  uint64_t ingested_at_watermark_change_ = 0;
  /// sink_released() at the first snapshot: released counts cover the whole
  /// stream life, session matches only this process's; the baseline aligns
  /// the two so outbox lag never goes "negative" after a recovery.
  std::map<std::string, uint64_t> baseline_released_;
  uint64_t prev_total_matches_ = 0;
  std::vector<uint64_t> prev_query_matches_;

  mutable std::mutex mu_;
  std::shared_ptr<const ServeStatus> latest_;
};

/// Minimal HTTP/1.0 status responder on 127.0.0.1:`port` (0 = ephemeral),
/// one request per connection, on a dedicated accept thread. Routes:
/// /metrics, /statusz, /healthz. Unknown paths get 404; before the first
/// published status everything gets 503.
class StatusServer {
 public:
  using StatusFn = std::function<std::shared_ptr<const ServeStatus>()>;

  static Result<std::unique_ptr<StatusServer>> Start(int port,
                                                     StatusFn source);
  ~StatusServer();
  StatusServer(const StatusServer&) = delete;
  StatusServer& operator=(const StatusServer&) = delete;

  int port() const { return port_; }
  void Stop();

 private:
  StatusServer() = default;
  void AcceptLoop();
  void HandleConnection(int fd);

  StatusFn source_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread thread_;
  std::mutex stop_mu_;
  bool stopped_ = false;
};

}  // namespace motto::serve

#endif  // MOTTO_SERVE_STATUS_H_
