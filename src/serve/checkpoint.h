#ifndef MOTTO_SERVE_CHECKPOINT_H_
#define MOTTO_SERVE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/time.h"
#include "engine/runtime.h"
#include "event/event.h"
#include "serve/wire.h"

namespace motto::serve {

/// Durable snapshot of a running `motto serve` session (DESIGN.md §15).
///
/// File layout: [u32 magic "MCKP"][u32 version][u32 payload_len]
/// [payload][u32 crc32-of-payload]. A kill at any byte of the write leaves
/// either no file, a torn file (short or CRC-mismatched — recovery skips it
/// with a warning and falls back to the previous snapshot), or a complete
/// file; the atomic temp+fsync+rename protocol below means the *named*
/// checkpoint is only ever one of {absent, previous-complete, new-complete}
/// unless the filesystem itself tears the rename.

inline constexpr uint32_t kCheckpointMagic = 0x504B434Du;  // "MCKP" LE.
inline constexpr uint32_t kCheckpointVersion = 1;

struct RegistryEntry {
  std::string name;
  bool is_primitive = true;
};

/// Everything needed to resume emission-equivalent to a never-killed run.
struct CheckpointState {
  /// Monotonic checkpoint number; file names embed it so the latest valid
  /// snapshot is the lexicographically greatest parseable file.
  uint64_t seq = 0;
  /// Event frames ingested so far — the resume offset a client re-sends
  /// from (`motto wire-encode --skip=N`).
  uint64_t ingested = 0;
  Timestamp watermark = 0;
  EvalOrderMode eval_mode = EvalOrderMode::kArrival;
  /// Connection index whose output file was live at snapshot time.
  uint32_t connection = 0;
  /// Complete output lines durably released *before* this checkpoint's
  /// outbox. Recovery truncates the output file to exactly this many lines,
  /// then re-appends the outbox — the output-commit discipline that makes
  /// "pre-kill output union post-recovery output == uninterrupted output"
  /// hold even for kills between the checkpoint rename and the release.
  uint64_t released_lines = 0;
  /// Per-sink released-match counts, as of before this outbox.
  std::vector<std::pair<std::string, uint64_t>> sink_released;
  /// Full event-type table in id order. Restore rebuilds its own registry,
  /// verifies this is a prefix-compatible snapshot, and registers the tail
  /// (types the optimizer of the restarted process has not re-derived).
  std::vector<RegistryEntry> registry;
  /// Physical plan-node key -> exported matcher state.
  std::vector<std::pair<std::string, NodeState>> nodes;
  /// Matches sealed since the previous checkpoint, in release order
  /// (sink name, match event). Written to the output file only after the
  /// snapshot is durable.
  std::vector<std::pair<std::string, Event>> outbox;
};

// --- Event / node-state serialization (shared with tests) ---

void PutEvent(std::string* out, const Event& event);
Event ReadEvent(ByteReader* reader);
void PutNodeState(std::string* out, const NodeState& state);
NodeState ReadNodeState(ByteReader* reader);

/// Serializes the full file image (header + payload + CRC).
std::string SerializeCheckpoint(const CheckpointState& state);
/// Parses a full file image; kInvalidArgument on torn/corrupt bytes.
Result<CheckpointState> ParseCheckpoint(std::string_view bytes);

// --- Durable storage ---

/// File name for checkpoint `seq` ("ckpt-<seq, zero padded>.mck").
std::string CheckpointFileName(uint64_t seq);

/// Atomically writes `state` into `dir` (created if missing): serialize to
/// `<name>.tmp`, fsync, rename over `<name>`, fsync the directory. Old
/// snapshots beyond the newest `keep` are pruned afterwards.
Status SaveCheckpoint(const std::string& dir, const CheckpointState& state,
                      int keep = 2);

struct LoadedCheckpoint {
  CheckpointState state;
  std::string path;
  /// Torn/corrupt snapshots skipped on the way to this one.
  std::vector<std::string> warnings;
};

/// Loads the newest parseable checkpoint in `dir`, skipping torn files with
/// a warning. kNotFound when the directory holds no valid snapshot (fresh
/// start); the warnings of a fully-torn directory are folded into the
/// kNotFound message.
Result<LoadedCheckpoint> LoadLatestCheckpoint(const std::string& dir);

}  // namespace motto::serve

#endif  // MOTTO_SERVE_CHECKPOINT_H_
