#include "serve/status.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "engine/runtime.h"
#include "obs/json_util.h"

namespace motto::serve {

namespace {

using obs::JsonEscape;
using obs::JsonNum;
using SteadyClock = std::chrono::steady_clock;

double SecondsSince(SteadyClock::time_point start) {
  return std::chrono::duration<double>(SteadyClock::now() - start).count();
}

constexpr Timestamp kNoTimestamp = std::numeric_limits<Timestamp>::min();

}  // namespace

// --- Attribution ---

std::vector<std::vector<size_t>> NodeQuerySets(const Jqp& jqp) {
  std::vector<std::vector<size_t>> sets(jqp.nodes.size());
  std::vector<char> seen;
  for (size_t q = 0; q < jqp.sinks.size(); ++q) {
    seen.assign(jqp.nodes.size(), 0);
    // Iterative DFS from the sink node over `inputs` edges: every reached
    // node contributes work to this query.
    std::vector<int32_t> stack;
    if (jqp.sinks[q].node >= 0 &&
        static_cast<size_t>(jqp.sinks[q].node) < jqp.nodes.size()) {
      stack.push_back(jqp.sinks[q].node);
    }
    while (!stack.empty()) {
      int32_t at = stack.back();
      stack.pop_back();
      size_t u = static_cast<size_t>(at);
      if (seen[u]) continue;
      seen[u] = 1;
      sets[u].push_back(q);
      for (int32_t up : jqp.nodes[u].inputs) {
        if (up >= 0 && static_cast<size_t>(up) < jqp.nodes.size() &&
            !seen[static_cast<size_t>(up)]) {
          stack.push_back(up);
        }
      }
    }
  }
  return sets;
}

// --- ServeStatus rendering ---

bool ServeStatus::Healthy(std::string* reason) const {
  if (watermark_stalled) {
    if (reason != nullptr) {
      *reason = "watermark stalled for " + JsonNum(watermark_idle_seconds) +
                "s while ingesting";
    }
    return false;
  }
  if (queue_saturated) {
    if (reason != nullptr) {
      *reason = "ingest queue saturated (" + std::to_string(queue_depth) +
                "/" + std::to_string(queue_capacity) + ")";
    }
    return false;
  }
  if (reason != nullptr) reason->clear();
  return true;
}

std::string ServeStatus::ToStatuszJson() const {
  std::string health_reason;
  const bool healthy = Healthy(&health_reason);
  std::string out = "{";
  if (snapshot != nullptr) {
    char wall[32];
    std::snprintf(wall, sizeof(wall), "%.3f", snapshot->wall_unix_seconds);
    out += "\"seq\":" + std::to_string(snapshot->seq) +
           ",\"wall_unix_seconds\":" + wall +
           ",\"uptime_seconds\":" + JsonNum(snapshot->uptime_seconds) +
           ",\"interval_seconds\":" + JsonNum(snapshot->interval_seconds) +
           ",";
  }
  out += "\"ingested\":" + std::to_string(ingested);
  out += ",\"watermark\":";
  out += watermark == kNoTimestamp ? std::string("null")
                                   : std::to_string(watermark);
  out += ",\"watermark_idle_seconds\":" + JsonNum(watermark_idle_seconds);
  out += ",\"checkpoints\":" + std::to_string(checkpoints);
  out += ",\"checkpoint_age_seconds\":" + JsonNum(checkpoint_age_seconds);
  out += ",\"connection\":" + std::to_string(connection);
  out += ",\"recovered\":";
  out += recovered ? "true" : "false";
  out +=
      ",\"recovery_imports_failed\":" + std::to_string(recovery_imports_failed);
  out += ",\"queue\":{\"depth\":" + std::to_string(queue_depth) +
         ",\"capacity\":" + std::to_string(queue_capacity) +
         ",\"max_depth\":" + std::to_string(queue_max_depth) +
         ",\"shed\":" + std::to_string(queue_shed) + "}";
  out += ",\"events_per_sec\":" + JsonNum(events_per_sec);
  out += ",\"matches_per_sec\":" + JsonNum(matches_per_sec);
  out += ",\"healthy\":";
  out += healthy ? "true" : "false";
  out += ",\"health_reason\":\"" + JsonEscape(health_reason) + "\"";
  out += ",\"queries\":[";
  for (size_t i = 0; i < queries.size(); ++i) {
    const QueryHealth& q = queries[i];
    if (i > 0) out += ',';
    out += "{\"name\":\"" + JsonEscape(q.name) + "\",\"state\":\"" +
           q.state + "\",\"matches\":" + std::to_string(q.matches) +
           ",\"released\":" + std::to_string(q.released) +
           ",\"outbox_lag\":" + std::to_string(q.outbox_lag) +
           ",\"last_emit_ts\":";
    out += q.last_emit_ts == kNoTimestamp ? std::string("null")
                                          : std::to_string(q.last_emit_ts);
    out += ",\"cpu_share\":" + JsonNum(q.cpu_share) + "}";
  }
  out += "],\"nodes\":[";
  for (size_t i = 0; i < nodes.size(); ++i) {
    const NodeHealth& n = nodes[i];
    if (i > 0) out += ',';
    out += "{\"id\":" + std::to_string(n.id) + ",\"label\":\"" +
           JsonEscape(n.label) +
           "\",\"events_in\":" + std::to_string(n.events_in) +
           ",\"events_out\":" + std::to_string(n.events_out) +
           ",\"busy_seconds\":" + JsonNum(n.busy_seconds) +
           ",\"cost_share\":" + JsonNum(n.cost_share) + ",\"queries\":[";
    for (size_t j = 0; j < n.queries.size(); ++j) {
      if (j > 0) out += ',';
      out += "\"" + JsonEscape(n.queries[j]) + "\"";
    }
    out += "]}";
  }
  out += "]";
  if (snapshot != nullptr) {
    out += ",\"metrics\":" + snapshot->ToJson();
  }
  out += "}";
  return out;
}

namespace {

/// Prometheus metric-name charset: [a-zA-Z_:][a-zA-Z0-9_:]*.
std::string MangleMetricName(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 6);
  out += "motto_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string EscapeLabel(std::string_view value) {
  std::string out;
  for (char c : value) {
    if (c == '\\' || c == '"') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// "node.<i>.<rest>" folds into a labeled family so per-node instruments
/// stay one family per stat instead of one per node id.
bool SplitNodeMetric(std::string_view name, std::string* rest,
                     std::string* node) {
  if (name.substr(0, 5) != "node.") return false;
  size_t dot = name.find('.', 5);
  if (dot == std::string_view::npos || dot == 5) return false;
  for (size_t i = 5; i < dot; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
  }
  *node = std::string(name.substr(5, dot - 5));
  *rest = std::string(name.substr(dot + 1));
  return true;
}

void EmitFamily(std::string* out, const std::string& family,
                const char* type,
                const std::vector<std::pair<std::string, std::string>>&
                    samples) {
  *out += "# TYPE " + family + " " + type + "\n";
  for (const auto& [labels, value] : samples) {
    *out += family + labels + " " + value + "\n";
  }
}

}  // namespace

std::string ServeStatus::ToPrometheus() const {
  std::string out;
  using Samples = std::vector<std::pair<std::string, std::string>>;
  std::map<std::string, Samples> counter_families;
  std::map<std::string, Samples> gauge_families;
  if (snapshot != nullptr) {
    for (const auto& [name, counter] : snapshot->counters) {
      std::string rest;
      std::string node;
      if (SplitNodeMetric(name, &rest, &node)) {
        counter_families[MangleMetricName("node_" + rest) + "_total"]
            .emplace_back("{node=\"" + node + "\"}",
                          std::to_string(counter.value));
      } else {
        counter_families[MangleMetricName(name) + "_total"].emplace_back(
            "", std::to_string(counter.value));
      }
    }
    for (const auto& [name, gauge] : snapshot->gauges) {
      std::string rest;
      std::string node;
      if (SplitNodeMetric(name, &rest, &node)) {
        gauge_families[MangleMetricName("node_" + rest)].emplace_back(
            "{node=\"" + node + "\"}", JsonNum(gauge.value));
      } else {
        gauge_families[MangleMetricName(name)].emplace_back(
            "", JsonNum(gauge.value));
      }
    }
  }

  // Serve-level gauges derived from the status itself.
  gauge_families["motto_up"].emplace_back("", "1");
  if (snapshot != nullptr) {
    gauge_families["motto_snapshot_seq"].emplace_back(
        "", std::to_string(snapshot->seq));
    gauge_families["motto_uptime_seconds"].emplace_back(
        "", JsonNum(snapshot->uptime_seconds));
  }
  counter_families["motto_serve_ingested_total"].emplace_back(
      "", std::to_string(ingested));
  counter_families["motto_serve_checkpoints_taken_total"].emplace_back(
      "", std::to_string(checkpoints));
  gauge_families["motto_serve_checkpoint_age_seconds"].emplace_back(
      "", JsonNum(checkpoint_age_seconds));
  gauge_families["motto_serve_watermark_idle_seconds"].emplace_back(
      "", JsonNum(watermark_idle_seconds));
  if (watermark != kNoTimestamp) {
    gauge_families["motto_serve_watermark"].emplace_back(
        "", std::to_string(watermark));
  }
  gauge_families["motto_serve_ingest_queue_depth"].emplace_back(
      "", std::to_string(queue_depth));
  gauge_families["motto_serve_ingest_queue_capacity"].emplace_back(
      "", std::to_string(queue_capacity));
  gauge_families["motto_serve_events_per_sec"].emplace_back(
      "", JsonNum(events_per_sec));
  gauge_families["motto_serve_matches_per_sec"].emplace_back(
      "", JsonNum(matches_per_sec));
  gauge_families["motto_serve_healthy"].emplace_back(
      "", Healthy(nullptr) ? "1" : "0");

  for (const QueryHealth& q : queries) {
    const std::string label = "{query=\"" + EscapeLabel(q.name) + "\"}";
    counter_families["motto_query_matches_total"].emplace_back(
        label, std::to_string(q.matches));
    counter_families["motto_query_released_total"].emplace_back(
        label, std::to_string(q.released));
    gauge_families["motto_query_outbox_lag"].emplace_back(
        label, std::to_string(q.outbox_lag));
    gauge_families["motto_query_cpu_share"].emplace_back(label,
                                                         JsonNum(q.cpu_share));
    if (q.last_emit_ts != kNoTimestamp) {
      gauge_families["motto_query_last_emit_ts"].emplace_back(
          label, std::to_string(q.last_emit_ts));
    }
    gauge_families["motto_query_state"].emplace_back(
        "{query=\"" + EscapeLabel(q.name) + "\",state=\"" + q.state + "\"}",
        "1");
  }
  for (const NodeHealth& n : nodes) {
    gauge_families["motto_node_cost_share"].emplace_back(
        "{node=\"" + std::to_string(n.id) + "\"}", JsonNum(n.cost_share));
  }

  for (const auto& [family, samples] : counter_families) {
    EmitFamily(&out, family, "counter", samples);
  }
  for (const auto& [family, samples] : gauge_families) {
    EmitFamily(&out, family, "gauge", samples);
  }
  if (snapshot != nullptr) {
    for (const auto& [name, histogram] : snapshot->histograms) {
      const std::string family = MangleMetricName(name);
      out += "# TYPE " + family + " histogram\n";
      uint64_t cumulative = 0;
      for (size_t b = 0; b < histogram.bounds.size(); ++b) {
        cumulative += b < histogram.counts.size() ? histogram.counts[b] : 0;
        out += family + "_bucket{le=\"" + JsonNum(histogram.bounds[b]) +
               "\"} " + std::to_string(cumulative) + "\n";
      }
      out += family + "_bucket{le=\"+Inf\"} " +
             std::to_string(histogram.count) + "\n";
      out += family + "_sum " + JsonNum(histogram.sum) + "\n";
      out += family + "_count " + std::to_string(histogram.count) + "\n";
    }
  }
  return out;
}

// --- ServeTelemetry ---

ServeTelemetry::ServeTelemetry(ServeCore* core, TelemetryOptions options)
    : core_(core),
      options_(std::move(options)),
      snapshotter_(core->options().metrics, options_.history),
      node_queries_(NodeQuerySets(core->jqp())),
      last_watermark_change_(SteadyClock::now()) {
  last_snapshot_ingested_ = core_->ingested();
  last_watermark_ = core_->watermark();
  ingested_at_watermark_change_ = core_->ingested();
  if (!options_.stats_log_path.empty()) {
    stats_log_ = std::fopen(options_.stats_log_path.c_str(), "ab");
    if (stats_log_ == nullptr) {
      status_ = InternalError("open stats log " + options_.stats_log_path +
                              ": " + std::strerror(errno));
    }
  }
}

ServeTelemetry::~ServeTelemetry() {
  if (stats_log_ != nullptr) std::fclose(stats_log_);
}

void ServeTelemetry::Tick(bool force) {
  bool due = force;
  if (!due && options_.snapshot_interval_seconds > 0) {
    due = snapshotter_.TickDue(options_.snapshot_interval_seconds);
  }
  if (!due && options_.snapshot_every_events > 0) {
    due = core_->ingested() - last_snapshot_ingested_ >=
          options_.snapshot_every_events;
  }
  if (!due) return;
  std::shared_ptr<const ServeStatus> built = Build();
  {
    std::lock_guard<std::mutex> lock(mu_);
    latest_ = built;
  }
  if (stats_log_ != nullptr) {
    std::string line = built->ToStatuszJson();
    line.push_back('\n');
    if (std::fwrite(line.data(), 1, line.size(), stats_log_) != line.size() &&
        status_.ok()) {
      status_ = InternalError("stats log write failed for " +
                              options_.stats_log_path);
    }
    std::fflush(stats_log_);
  }
}

std::shared_ptr<const ServeStatus> ServeTelemetry::Latest() const {
  std::lock_guard<std::mutex> lock(mu_);
  return latest_;
}

std::shared_ptr<const ServeStatus> ServeTelemetry::Build() {
  auto status = std::make_shared<ServeStatus>();
  status->snapshot = snapshotter_.Collect();
  status->ingested = core_->ingested();
  status->watermark = core_->watermark();
  status->checkpoints = core_->checkpoints_taken();
  status->checkpoint_age_seconds = core_->seconds_since_checkpoint();
  status->connection = core_->connection();
  status->recovered = core_->recovery().recovered;
  status->recovery_imports_failed = core_->recovery().imports_failed;
  last_snapshot_ingested_ = status->ingested;

  if (status->watermark != last_watermark_) {
    last_watermark_ = status->watermark;
    last_watermark_change_ = SteadyClock::now();
    ingested_at_watermark_change_ = status->ingested;
  }
  status->watermark_idle_seconds = SecondsSince(last_watermark_change_);
  status->watermark_stalled =
      status->ingested > ingested_at_watermark_change_ &&
      status->watermark_idle_seconds > options_.stall_seconds;

  const IngestQueue* queue = core_->ingest_queue();
  if (queue != nullptr) {
    status->queue_depth = queue->depth();
    status->queue_capacity = queue->capacity();
    status->queue_max_depth = queue->max_depth();
    status->queue_shed = queue->shed();
    status->queue_saturated = status->queue_capacity > 0 &&
                              status->queue_depth >= status->queue_capacity;
  }

  // Per-node health plus a cost proxy: measured busy time when the run
  // collected it, otherwise events handled (in + out).
  const Jqp& jqp = core_->jqp();
  std::vector<NodeStats> node_stats;
  core_->executor().SnapshotSessionNodeStats(&node_stats);
  double total_busy = 0.0;
  for (const NodeStats& ns : node_stats) total_busy += ns.busy_seconds;
  std::vector<double> cost(node_stats.size(), 0.0);
  double total_cost = 0.0;
  for (size_t i = 0; i < node_stats.size(); ++i) {
    cost[i] = total_busy > 0.0
                  ? node_stats[i].busy_seconds
                  : static_cast<double>(node_stats[i].events_in +
                                        node_stats[i].events_out);
    total_cost += cost[i];
  }
  status->nodes.resize(node_stats.size());
  for (size_t i = 0; i < node_stats.size(); ++i) {
    NodeHealth& n = status->nodes[i];
    n.id = static_cast<int32_t>(i);
    n.label = jqp.NodeLabel(static_cast<int32_t>(i));
    n.events_in = node_stats[i].events_in;
    n.events_out = node_stats[i].events_out;
    n.busy_seconds = node_stats[i].busy_seconds;
    n.cost_share = total_cost > 0.0 ? cost[i] / total_cost : 0.0;
    if (i < node_queries_.size()) {
      for (size_t q : node_queries_[i]) {
        n.queries.push_back(jqp.sinks[q].query_name);
      }
    }
  }

  // Apportion shared-node cost evenly across each node's owning queries
  // (paper §III sharing: a node serving k queries bills each 1/k of its
  // work), then normalize to shares of the whole plan's cost.
  std::vector<double> query_cost(jqp.sinks.size(), 0.0);
  for (size_t i = 0; i < node_queries_.size() && i < cost.size(); ++i) {
    if (node_queries_[i].empty()) continue;
    const double slice =
        cost[i] / static_cast<double>(node_queries_[i].size());
    for (size_t q : node_queries_[i]) query_cost[q] += slice;
  }

  const std::vector<SinkTelemetry>& sinks =
      core_->executor().session_sink_telemetry();
  const std::map<std::string, uint64_t>& released = core_->sink_released();
  prev_query_matches_.resize(jqp.sinks.size(), 0);
  if (baseline_released_.empty()) {
    // First build: everything already released belongs to pre-recovery life.
    baseline_released_ = released;
  }
  uint64_t total_matches = 0;
  status->queries.resize(jqp.sinks.size());
  for (size_t q = 0; q < jqp.sinks.size(); ++q) {
    QueryHealth& health = status->queries[q];
    health.name = jqp.sinks[q].query_name;
    health.matches = q < sinks.size() ? sinks[q].matches : 0;
    health.last_emit_ts = q < sinks.size() ? sinks[q].last_emit_ts
                                           : kNoTimestamp;
    auto it = released.find(health.name);
    health.released = it != released.end() ? it->second : 0;
    uint64_t released_baseline = 0;
    auto base = baseline_released_.find(health.name);
    if (base != baseline_released_.end()) released_baseline = base->second;
    const uint64_t released_this_life =
        health.released >= released_baseline
            ? health.released - released_baseline
            : 0;
    health.outbox_lag = health.matches >= released_this_life
                            ? health.matches - released_this_life
                            : 0;
    health.cpu_share =
        total_cost > 0.0 ? query_cost[q] / total_cost : 0.0;
    const uint64_t delta = health.matches >= prev_query_matches_[q]
                               ? health.matches - prev_query_matches_[q]
                               : health.matches;
    if (delta > 0) {
      health.state = "live";
    } else if (health.matches > 0 || health.released > 0) {
      health.state = "idle";
    } else {
      health.state = status->ingested > 0 ? "starved" : "idle";
    }
    prev_query_matches_[q] = health.matches;
    total_matches += health.matches;
  }

  status->events_per_sec = status->snapshot->Rate("serve.ingested_events");
  const double dt = status->snapshot->interval_seconds;
  if (dt > 0 && total_matches >= prev_total_matches_) {
    status->matches_per_sec =
        static_cast<double>(total_matches - prev_total_matches_) / dt;
  }
  prev_total_matches_ = total_matches;
  return status;
}

// --- StatusServer ---

Result<std::unique_ptr<StatusServer>> StatusServer::Start(int port,
                                                          StatusFn source) {
  std::unique_ptr<StatusServer> server(new StatusServer());
  server->source_ = std::move(source);
  MOTTO_ASSIGN_OR_RETURN(server->listen_fd_,
                         ListenTcp(port, &server->port_));
  server->thread_ = std::thread([raw = server.get()] { raw->AcceptLoop(); });
  return server;
}

StatusServer::~StatusServer() { Stop(); }

void StatusServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  // Unblock accept(); the fd itself is closed only after the join so the
  // number cannot be reused under the accept thread.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void StatusServer::AcceptLoop() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // Shutdown (or a fatal accept error) ends the server.
    }
    HandleConnection(fd);
    ::close(fd);
  }
}

namespace {

std::string HttpResponse(int code, const char* reason,
                         const std::string& content_type,
                         const std::string& body) {
  std::string out = "HTTP/1.0 " + std::to_string(code) + " " + reason +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

void WriteAll(int fd, const std::string& data) {
  size_t written = 0;
  while (written < data.size()) {
    ssize_t n = ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    written += static_cast<size_t>(n);
  }
}

}  // namespace

void StatusServer::HandleConnection(int fd) {
  // Requests are a single short line; read until the header terminator or a
  // small cap, with a poll timeout so a stuck client cannot wedge the loop.
  std::string request;
  char buf[2048];
  while (request.size() < 8192 &&
         request.find("\r\n\r\n") == std::string::npos &&
         request.find('\n') == std::string::npos) {
    pollfd pfd{fd, POLLIN, 0};
    int ready = ::poll(&pfd, 1, 2000);
    if (ready <= 0) return;
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    request.append(buf, static_cast<size_t>(n));
  }
  size_t sp1 = request.find(' ');
  if (sp1 == std::string::npos) {
    WriteAll(fd, HttpResponse(400, "Bad Request", "text/plain",
                              "bad request\n"));
    return;
  }
  size_t sp2 = request.find(' ', sp1 + 1);
  std::string path = request.substr(
      sp1 + 1, sp2 == std::string::npos ? std::string::npos : sp2 - sp1 - 1);
  size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);

  std::shared_ptr<const ServeStatus> status =
      source_ ? source_() : nullptr;
  if (status == nullptr) {
    WriteAll(fd, HttpResponse(503, "Service Unavailable", "text/plain",
                              "no status published yet\n"));
    return;
  }
  if (path == "/metrics") {
    WriteAll(fd, HttpResponse(200, "OK", "text/plain; version=0.0.4",
                              status->ToPrometheus()));
  } else if (path == "/statusz") {
    WriteAll(fd, HttpResponse(200, "OK", "application/json",
                              status->ToStatuszJson() + "\n"));
  } else if (path == "/healthz") {
    std::string reason;
    const bool healthy = status->Healthy(&reason);
    std::string body = std::string("{\"healthy\":") +
                       (healthy ? "true" : "false") + ",\"reason\":\"" +
                       JsonEscape(reason) + "\"}\n";
    if (healthy) {
      WriteAll(fd, HttpResponse(200, "OK", "application/json", body));
    } else {
      WriteAll(fd, HttpResponse(503, "Service Unavailable",
                                "application/json", body));
    }
  } else {
    WriteAll(fd, HttpResponse(404, "Not Found", "text/plain",
                              "unknown path (try /metrics, /statusz, "
                              "/healthz)\n"));
  }
}

}  // namespace motto::serve
