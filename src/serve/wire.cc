#include "serve/wire.h"

#include <cstring>

namespace motto::serve {

std::string_view FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kHello:
      return "hello";
    case FrameType::kRegisterType:
      return "register-type";
    case FrameType::kEvent:
      return "event";
    case FrameType::kWatermark:
      return "watermark";
    case FrameType::kFlush:
      return "flush";
    case FrameType::kCheckpoint:
      return "checkpoint";
    case FrameType::kEnd:
      return "end";
  }
  return "unknown";
}

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU16(std::string* out, uint16_t v) {
  PutU8(out, static_cast<uint8_t>(v & 0xFF));
  PutU8(out, static_cast<uint8_t>(v >> 8));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    PutU8(out, static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    PutU8(out, static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutI32(std::string* out, int32_t v) {
  PutU32(out, static_cast<uint32_t>(v));
}

void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

void PutF64(std::string* out, double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutString(std::string* out, std::string_view v) {
  PutU32(out, static_cast<uint32_t>(v.size()));
  out->append(v.data(), v.size());
}

bool ByteReader::Need(size_t n) {
  if (failed_ || size_ - pos_ < n) {
    failed_ = true;
    return false;
  }
  return true;
}

uint8_t ByteReader::U8() {
  if (!Need(1)) return 0;
  return data_[pos_++];
}

uint16_t ByteReader::U16() {
  if (!Need(2)) return 0;
  uint16_t v = static_cast<uint16_t>(data_[pos_]) |
               static_cast<uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

uint32_t ByteReader::U32() {
  if (!Need(4)) return 0;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(data_[pos_ + static_cast<size_t>(i)]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

uint64_t ByteReader::U64() {
  if (!Need(8)) return 0;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(data_[pos_ + static_cast<size_t>(i)]) << (8 * i);
  }
  pos_ += 8;
  return v;
}

int32_t ByteReader::I32() { return static_cast<int32_t>(U32()); }

int64_t ByteReader::I64() { return static_cast<int64_t>(U64()); }

double ByteReader::F64() {
  uint64_t bits = U64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string ByteReader::String() {
  uint32_t len = U32();
  if (!Need(len)) return std::string();
  std::string v(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return v;
}

namespace {

const uint32_t* Crc32Table() {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32(std::string_view bytes) {
  const uint32_t* table = Crc32Table();
  uint32_t crc = 0xFFFFFFFFu;
  for (char ch : bytes) {
    crc = table[(crc ^ static_cast<uint8_t>(ch)) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void AppendFrame(std::string* out, FrameType type, std::string_view payload) {
  PutU32(out, static_cast<uint32_t>(payload.size() + 1));
  size_t body_start = out->size();
  PutU8(out, static_cast<uint8_t>(type));
  out->append(payload.data(), payload.size());
  uint32_t crc = Crc32(
      std::string_view(out->data() + body_start, out->size() - body_start));
  PutU32(out, crc);
}

void AppendHello(std::string* out) {
  std::string payload;
  PutU32(&payload, kWireMagic);
  PutU16(&payload, kWireVersion);
  AppendFrame(out, FrameType::kHello, payload);
}

void AppendRegisterType(std::string* out, uint32_t wire_type,
                        std::string_view name, bool is_primitive) {
  std::string payload;
  PutU32(&payload, wire_type);
  PutU8(&payload, is_primitive ? 1 : 0);
  PutU16(&payload, static_cast<uint16_t>(name.size()));
  payload.append(name.data(), name.size());
  AppendFrame(out, FrameType::kRegisterType, payload);
}

void AppendEvent(std::string* out, uint32_t wire_type, Timestamp ts,
                 const Payload& payload) {
  std::string body;
  PutU32(&body, wire_type);
  PutI64(&body, ts);
  PutF64(&body, payload.value);
  PutI64(&body, payload.aux);
  AppendFrame(out, FrameType::kEvent, body);
}

void AppendWatermark(std::string* out, Timestamp ts) {
  std::string payload;
  PutI64(&payload, ts);
  AppendFrame(out, FrameType::kWatermark, payload);
}

void AppendControl(std::string* out, FrameType type) {
  AppendFrame(out, type, std::string_view());
}

std::string EncodeStream(const EventStream& stream,
                         const EventTypeRegistry& registry,
                         const EncodeStreamOptions& options) {
  std::string out;
  AppendHello(&out);
  for (EventTypeId id = 0; id < registry.size(); ++id) {
    AppendRegisterType(&out, static_cast<uint32_t>(id), registry.NameOf(id),
                       registry.IsPrimitive(id));
  }
  uint64_t sent = 0;
  uint64_t index = 0;
  for (const Event& event : stream) {
    ++index;
    if (index <= options.skip_events) continue;
    if (options.limit_events > 0 && sent >= options.limit_events) break;
    AppendEvent(&out, static_cast<uint32_t>(event.type()), event.begin(),
                event.payload());
    ++sent;
    if (options.checkpoint_every > 0 && sent % options.checkpoint_every == 0) {
      AppendControl(&out, FrameType::kCheckpoint);
    }
  }
  if (options.with_end) AppendControl(&out, FrameType::kEnd);
  return out;
}

void FrameDecoder::Append(const void* data, size_t size) {
  // Compact the consumed prefix before it outgrows the live tail; amortized
  // O(1) per byte, keeps the buffer at ~2x the largest in-flight frame.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(static_cast<const char*>(data), size);
}

FrameDecoder::Outcome FrameDecoder::Fail(std::string message) {
  failed_ = true;
  error_ = std::move(message);
  return Outcome::kError;
}

FrameDecoder::Outcome FrameDecoder::Next(Frame* out) {
  if (failed_) return Outcome::kError;
  std::string_view view(buffer_.data() + consumed_,
                        buffer_.size() - consumed_);
  if (view.size() < 4) return Outcome::kNeedMore;
  ByteReader header(view.data(), 4);
  uint32_t body_len = header.U32();
  if (body_len == 0) return Fail("zero-length frame");
  if (body_len > kMaxFramePayload + 1) {
    return Fail("oversized frame: " + std::to_string(body_len) + " bytes");
  }
  size_t total = 4 + static_cast<size_t>(body_len) + 4;
  if (view.size() < total) return Outcome::kNeedMore;
  std::string_view body = view.substr(4, body_len);
  ByteReader crc_reader(view.data() + 4 + body_len, 4);
  uint32_t want_crc = crc_reader.U32();
  uint32_t got_crc = Crc32(body);
  if (want_crc != got_crc) return Fail("frame CRC mismatch");

  Frame frame;
  frame.type = static_cast<FrameType>(static_cast<uint8_t>(body[0]));
  ByteReader payload(body.data() + 1, body.size() - 1);
  switch (frame.type) {
    case FrameType::kHello:
      frame.magic = payload.U32();
      frame.version = payload.U16();
      if (payload.failed()) return Fail("short hello frame");
      if (frame.magic != kWireMagic) return Fail("bad magic");
      if (frame.version != kWireVersion) {
        return Fail("unsupported wire version " +
                    std::to_string(frame.version));
      }
      break;
    case FrameType::kRegisterType: {
      frame.wire_type = payload.U32();
      frame.is_primitive = payload.U8() != 0;
      uint16_t name_len = payload.U16();
      frame.name.clear();
      for (uint16_t i = 0; i < name_len && !payload.failed(); ++i) {
        frame.name.push_back(static_cast<char>(payload.U8()));
      }
      if (payload.failed()) return Fail("short register-type frame");
      break;
    }
    case FrameType::kEvent:
      frame.wire_type = payload.U32();
      frame.ts = payload.I64();
      frame.payload.value = payload.F64();
      frame.payload.aux = payload.I64();
      if (payload.failed()) return Fail("short event frame");
      break;
    case FrameType::kWatermark:
      frame.ts = payload.I64();
      if (payload.failed()) return Fail("short watermark frame");
      break;
    case FrameType::kFlush:
    case FrameType::kCheckpoint:
    case FrameType::kEnd:
      break;
    default:
      return Fail("unknown frame type " +
                  std::to_string(static_cast<int>(frame.type)));
  }
  if (payload.remaining() > 0) {
    return Fail(std::string("trailing bytes in ") +
                std::string(FrameTypeName(frame.type)) + " frame");
  }
  if (!saw_hello_) {
    if (frame.type != FrameType::kHello) {
      return Fail("first frame must be hello, got " +
                  std::string(FrameTypeName(frame.type)));
    }
    saw_hello_ = true;
  }
  consumed_ += total;
  *out = frame;
  return Outcome::kFrame;
}

}  // namespace motto::serve
