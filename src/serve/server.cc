#include "serve/server.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <thread>
#include <utility>

#include "obs/metrics.h"

namespace motto::serve {

namespace fs = std::filesystem;

namespace {

using SteadyClock = std::chrono::steady_clock;

double SecondsSince(SteadyClock::time_point start) {
  return std::chrono::duration<double>(SteadyClock::now() - start).count();
}

void Count(obs::MetricsRegistry* metrics, const char* name, uint64_t n = 1) {
  if (metrics != nullptr) metrics->GetCounter(name)->Add(n);
}

}  // namespace

Result<std::unique_ptr<ServeCore>> ServeCore::Create(
    const std::vector<Query>& workload, const EventTypeRegistry& registry,
    StreamStats stats, ServeOptions options) {
  if (options.optimizer.mode != OptimizerMode::kMotto) {
    return InvalidArgumentError(
        "motto serve requires the motto optimizer mode (WorkloadSession)");
  }
  std::unique_ptr<ServeCore> core(new ServeCore());
  core->options_ = std::move(options);
  if (core->options_.metrics != nullptr) {
    core->frames_counter_ = core->options_.metrics->GetCounter("serve.frames");
    core->ingested_counter_ =
        core->options_.metrics->GetCounter("serve.ingested_events");
  }
  core->registry_ = registry;
  core->session_.emplace(&core->registry_, std::move(stats),
                         core->options_.optimizer);
  MOTTO_RETURN_IF_ERROR(core->session_->Initialize(workload));
  core->keys_ = core->session_->PhysicalKeys();
  for (const Jqp::Sink& sink : core->session_->jqp().sinks) {
    core->sink_names_.push_back(sink.query_name);
    core->sink_released_.emplace(sink.query_name, 0);
  }
  MOTTO_ASSIGN_OR_RETURN(Executor executor,
                         Executor::Create(core->session_->jqp()));
  core->executor_ = std::move(executor);
  MOTTO_RETURN_IF_ERROR(core->RecoverOrStart());
  return core;
}

ServeCore::~ServeCore() {
  // Nothing is buffered between releases, so tearing a core down mid-stream
  // writes nothing — the recovery differ relies on "abandon the object" being
  // byte-equivalent to SIGKILL at a frame boundary.
  if (out_ != nullptr) std::fclose(out_);
}

const Jqp& ServeCore::jqp() const { return session_->jqp(); }

double ServeCore::seconds_since_checkpoint() const {
  return SecondsSince(last_checkpoint_time_);
}

std::string ServeCore::OutputPath() const {
  if (options_.out_dir.empty()) return std::string();
  return (fs::path(options_.out_dir) /
          ("conn" + std::to_string(connection_) + ".matches"))
      .string();
}

Status ServeCore::RecoverOrStart() {
  ExecutorOptions exec_options;
  exec_options.metrics = options_.metrics;
  exec_options.eval_order = options_.eval_order;
  executor_->BeginSession(exec_options);

  if (!options_.checkpoint_dir.empty()) {
    Result<LoadedCheckpoint> loaded =
        LoadLatestCheckpoint(options_.checkpoint_dir);
    if (loaded.ok()) {
      recovery_.warnings = loaded->warnings;
      MOTTO_RETURN_IF_ERROR(ImportCheckpoint(loaded->state));
      Count(options_.metrics, "serve.recoveries");
      Count(options_.metrics, "serve.recovery_imports_failed",
            recovery_.imports_failed);
      return Status::Ok();
    }
    if (loaded.status().code() != StatusCode::kNotFound) {
      return loaded.status();
    }
    if (loaded.status().message().find("skipping") != std::string::npos) {
      // Every snapshot was torn: start fresh, but say so.
      recovery_.warnings.push_back(loaded.status().message());
    }
  }
  return RepairOutput(0, {});
}

Status ServeCore::ImportCheckpoint(const CheckpointState& ck) {
  if (ck.eval_mode != options_.eval_order) {
    return InvalidArgumentError(
        "checkpoint was taken under a different --eval-order; restart with "
        "the original mode or clear the checkpoint directory");
  }
  // Registry reconciliation: re-optimizing the same workload re-derives a
  // deterministic prefix of the snapshot's table; the tail (types learned
  // from the wire after optimization) is re-registered in id order so every
  // serialized type id still means the same type.
  if (ck.registry.size() < static_cast<size_t>(registry_.size())) {
    return InvalidArgumentError(
        "checkpoint registry is smaller than the optimized workload's; "
        "the workload changed since the snapshot");
  }
  for (size_t id = 0; id < ck.registry.size(); ++id) {
    const RegistryEntry& entry = ck.registry[id];
    if (id < static_cast<size_t>(registry_.size())) {
      if (entry.name != registry_.NameOf(static_cast<EventTypeId>(id))) {
        return InvalidArgumentError(
            "checkpoint registry diverges at type id " + std::to_string(id) +
            " (" + entry.name + " vs " +
            registry_.NameOf(static_cast<EventTypeId>(id)) +
            "); the workload changed since the snapshot");
      }
      continue;
    }
    EventTypeId got = entry.is_primitive
                          ? registry_.RegisterPrimitive(entry.name)
                          : registry_.RegisterComposite(entry.name);
    if (got != static_cast<EventTypeId>(id)) {
      return InternalError("registry restore produced id " +
                           std::to_string(got) + " for snapshot id " +
                           std::to_string(id));
    }
  }
  std::unordered_map<std::string_view, const NodeState*> by_key;
  for (const auto& [key, state] : ck.nodes) by_key.emplace(key, &state);
  for (size_t i = 0; i < keys_.size(); ++i) {
    auto it = by_key.find(keys_[i]);
    if (it == by_key.end()) {
      ++recovery_.nodes_fresh;
      continue;
    }
    if (executor_->runtime(static_cast<int32_t>(i))
            ->ImportState(*it->second)) {
      ++recovery_.nodes_kept;
    } else {
      ++recovery_.imports_failed;
      recovery_.warnings.push_back("state import rejected for node " +
                                   keys_[i] + "; starting it fresh");
    }
  }
  ingested_ = ck.ingested;
  watermark_ = ck.watermark;
  seq_ = ck.seq + 1;
  connection_ = ck.connection;
  released_lines_ = ck.released_lines;
  for (const auto& [sink, count] : ck.sink_released) {
    sink_released_[sink] = count;
  }
  recovery_.recovered = true;
  recovery_.checkpoint_seq = ck.seq;
  recovery_.ingested = ck.ingested;
  recovery_.watermark = ck.watermark;
  // Repair the output file to the snapshot horizon and re-apply the
  // snapshot's outbox: idempotent whether the pre-kill process released it
  // fully, partially (torn last line), or not at all.
  MOTTO_RETURN_IF_ERROR(RepairOutput(ck.released_lines, ck.outbox));
  CountReleased(ck.outbox);
  released_lines_ += ck.outbox.size();
  return Status::Ok();
}

namespace {

void AppendMatchLine(std::string* out, const std::string& sink,
                     const Event& event) {
  out->append(sink);
  out->push_back('\t');
  out->append(std::to_string(event.begin()));
  out->push_back('\t');
  out->append(std::to_string(event.end()));
  out->push_back('\t');
  out->append(event.Fingerprint());
  out->push_back('\n');
}

}  // namespace

Status ServeCore::RepairOutput(
    uint64_t released_lines,
    const std::vector<std::pair<std::string, Event>>& outbox) {
  if (out_ != nullptr) {
    std::fclose(out_);
    out_ = nullptr;
  }
  if (options_.out_dir.empty()) return Status::Ok();  // Discard mode.
  std::error_code ec;
  fs::create_directories(options_.out_dir, ec);
  if (ec) {
    return InternalError("create out dir " + options_.out_dir + ": " +
                         ec.message());
  }
  const std::string path = OutputPath();
  std::string content;
  {
    // Keep exactly the first `released_lines` complete lines; a torn tail
    // (kill mid-append) and anything past the snapshot horizon vanish here
    // and are re-created from the snapshot's outbox.
    std::ifstream in(path, std::ios::binary);
    std::string line;
    uint64_t kept = 0;
    while (kept < released_lines && std::getline(in, line)) {
      content += line;
      content += '\n';
      ++kept;
    }
  }
  for (const auto& [sink, event] : outbox) {
    AppendMatchLine(&content, sink, event);
  }
  const std::string tmp = path + ".tmp";
  {
    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
      return InternalError("open " + tmp + ": " + std::strerror(errno));
    }
    size_t written = 0;
    while (written < content.size()) {
      ssize_t n = ::write(fd, content.data() + written,
                          content.size() - written);
      if (n < 0) {
        if (errno == EINTR) continue;
        Status status =
            InternalError("write " + tmp + ": " + std::strerror(errno));
        ::close(fd);
        return status;
      }
      written += static_cast<size_t>(n);
    }
    ::fsync(fd);
    ::close(fd);
  }
  fs::rename(tmp, path, ec);
  if (ec) {
    return InternalError("rename " + tmp + ": " + ec.message());
  }
  out_ = std::fopen(path.c_str(), "ab");
  if (out_ == nullptr) {
    return InternalError("open " + path + " for append: " +
                         std::strerror(errno));
  }
  return Status::Ok();
}

Status ServeCore::ReleaseOutbox(
    const std::vector<std::pair<std::string, Event>>& outbox) {
  if (!options_.out_dir.empty()) {
    if (out_ == nullptr) {
      return InternalError("output file is not open");
    }
    std::string lines;
    for (const auto& [sink, event] : outbox) {
      AppendMatchLine(&lines, sink, event);
    }
    if (std::fwrite(lines.data(), 1, lines.size(), out_) != lines.size()) {
      return InternalError("append to " + OutputPath() + " failed");
    }
    std::fflush(out_);
    ::fsync(fileno(out_));
  }
  CountReleased(outbox);
  released_lines_ += outbox.size();
  return Status::Ok();
}

void ServeCore::CountReleased(
    const std::vector<std::pair<std::string, Event>>& outbox) {
  for (const auto& [sink, event] : outbox) {
    (void)event;
    ++sink_released_[sink];
  }
  Count(options_.metrics, "serve.released_matches", outbox.size());
}

std::vector<std::pair<std::string, Event>> ServeCore::FlattenSinkEvents(
    std::unordered_map<std::string, std::vector<Event>>* sink_events) {
  std::vector<std::pair<std::string, Event>> outbox;
  for (const std::string& sink : sink_names_) {
    auto it = sink_events->find(sink);
    if (it == sink_events->end()) continue;
    for (Event& event : it->second) {
      outbox.emplace_back(sink, std::move(event));
    }
    sink_events->erase(it);
  }
  return outbox;
}

std::vector<std::pair<std::string, Event>> ServeCore::DrainOutbox() {
  std::unordered_map<std::string, std::vector<Event>> drained =
      executor_->DrainSessionOutput();
  return FlattenSinkEvents(&drained);
}

CheckpointState ServeCore::BuildCheckpoint(
    std::vector<std::pair<std::string, Event>> outbox) {
  CheckpointState ck;
  ck.seq = seq_;
  ck.ingested = ingested_;
  ck.watermark = watermark_;
  ck.eval_mode = options_.eval_order;
  ck.connection = connection_;
  ck.released_lines = released_lines_;
  for (const auto& [sink, count] : sink_released_) {
    ck.sink_released.emplace_back(sink, count);
  }
  for (EventTypeId id = 0; id < registry_.size(); ++id) {
    ck.registry.push_back({registry_.NameOf(id), registry_.IsPrimitive(id)});
  }
  ck.nodes.reserve(keys_.size());
  for (size_t i = 0; i < keys_.size(); ++i) {
    NodeState state;
    executor_->runtime(static_cast<int32_t>(i))->ExportState(&state);
    ck.nodes.emplace_back(keys_[i], std::move(state));
  }
  ck.outbox = std::move(outbox);
  return ck;
}

Status ServeCore::SaveAndRelease(
    std::vector<std::pair<std::string, Event>> outbox) {
  if (!options_.checkpoint_dir.empty()) {
    SteadyClock::time_point start = SteadyClock::now();
    CheckpointState ck = BuildCheckpoint(outbox);
    MOTTO_RETURN_IF_ERROR(SaveCheckpoint(options_.checkpoint_dir, ck,
                                         options_.keep_checkpoints));
    if (options_.metrics != nullptr) {
      options_.metrics->GetCounter("serve.checkpoints")->Add();
      options_.metrics->GetGauge("serve.checkpoint_seconds")
          ->Set(SecondsSince(start));
    }
  }
  last_checkpoint_time_ = SteadyClock::now();
  ++seq_;
  if (fault_skip_release_once_) {
    fault_skip_release_once_ = false;
    return InternalError(
        "fault injection: crashed between checkpoint rename and outbox "
        "release");
  }
  return ReleaseOutbox(outbox);
}

Status ServeCore::Checkpoint() {
  if (finished_) return Status::Ok();
  return SaveAndRelease(DrainOutbox());
}

Status ServeCore::BeginConnection() {
  MOTTO_RETURN_IF_ERROR(Checkpoint());
  ++connection_;
  released_lines_ = 0;
  return RepairOutput(0, {});
}

Result<bool> ServeCore::OnFrame(const Frame& frame) {
  if (finished_) {
    return InternalError("frame received after Finish");
  }
  obs::MetricsRegistry* metrics = options_.metrics;
  if (frames_counter_ != nullptr) frames_counter_->Add();
  switch (frame.type) {
    case FrameType::kHello:
      // Connection preamble; the decoder already validated magic/version.
      break;
    case FrameType::kRegisterType: {
      EventTypeId id = frame.is_primitive
                           ? registry_.RegisterPrimitive(frame.name)
                           : registry_.RegisterComposite(frame.name);
      wire_map_[frame.wire_type] = id;
      break;
    }
    case FrameType::kEvent: {
      auto it = wire_map_.find(frame.wire_type);
      if (it == wire_map_.end()) {
        Count(metrics, "serve.unknown_type_events");
        break;
      }
      if (frame.ts < watermark_) {
        // The engine requires nondecreasing timestamps; a straggler behind
        // the watermark is counted out, not allowed to corrupt the session.
        Count(metrics, "serve.late_events");
        break;
      }
      Event event = Event::Primitive(it->second, frame.ts, frame.payload);
      executor_->FeedSession(&event, 1);
      ++ingested_;
      watermark_ = frame.ts;
      if (ingested_counter_ != nullptr) ingested_counter_->Add();
      if (options_.checkpoint_interval > 0 &&
          ingested_ % options_.checkpoint_interval == 0) {
        MOTTO_RETURN_IF_ERROR(Checkpoint());
      }
      break;
    }
    case FrameType::kWatermark:
      if (frame.ts > watermark_) {
        watermark_ = frame.ts;
        executor_->FlushSessionAt(frame.ts);
      }
      break;
    case FrameType::kFlush:
      if (watermark_ > std::numeric_limits<Timestamp>::min()) {
        executor_->FlushSessionAt(watermark_);
      }
      break;
    case FrameType::kCheckpoint:
      MOTTO_RETURN_IF_ERROR(Checkpoint());
      break;
    case FrameType::kEnd:
      return false;
  }
  return true;
}

Result<RunResult> ServeCore::Finish() {
  if (finished_) return InternalError("Finish called twice");
  RunResult result = executor_->FinishSession();
  std::vector<std::pair<std::string, Event>> outbox =
      FlattenSinkEvents(&result.sink_events);
  MOTTO_RETURN_IF_ERROR(SaveAndRelease(std::move(outbox)));
  finished_ = true;
  if (out_ != nullptr) {
    std::fclose(out_);
    out_ = nullptr;
  }
  return result;
}

// --- IngestQueue ---

bool IngestQueue::Push(Item item) {
  std::unique_lock<std::mutex> lock(mu_);
  const bool sheddable =
      shed_events_ && item.frame.type == FrameType::kEvent;
  while (!closed_ && items_.size() >= capacity_) {
    if (sheddable) {
      ++shed_count_;
      return false;
    }
    space_.wait(lock);
  }
  if (closed_) return false;
  items_.push_back(std::move(item));
  max_depth_ = std::max(max_depth_, items_.size());
  ready_.notify_one();
  return true;
}

bool IngestQueue::PopAll(std::vector<Item>* out) {
  std::unique_lock<std::mutex> lock(mu_);
  ready_.wait(lock, [&] { return closed_ || !items_.empty(); });
  if (items_.empty()) return false;
  out->clear();
  while (!items_.empty()) {
    out->push_back(std::move(items_.front()));
    items_.pop_front();
  }
  space_.notify_all();
  return true;
}

bool IngestQueue::PopAll(std::vector<Item>* out,
                         std::chrono::steady_clock::time_point deadline) {
  std::unique_lock<std::mutex> lock(mu_);
  ready_.wait_until(lock, deadline,
                    [&] { return closed_ || !items_.empty(); });
  out->clear();
  if (items_.empty()) return !closed_;  // Timeout: tick, then re-poll.
  while (!items_.empty()) {
    out->push_back(std::move(items_.front()));
    items_.pop_front();
  }
  space_.notify_all();
  return true;
}

void IngestQueue::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  ready_.notify_all();
  space_.notify_all();
}

uint64_t IngestQueue::shed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shed_count_;
}

size_t IngestQueue::max_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_depth_;
}

size_t IngestQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return items_.size();
}

// --- Front-end loops ---

Result<IngestLoopResult> RunIngestLoop(ServeCore* core, int fd,
                                       const IngestOptions& options) {
  IngestQueue queue(options.queue_capacity, options.shed);
  std::string reader_error;  // Written before Close(), read after join.
  std::atomic<bool> shutdown_requested{false};
  const int shutdown_fd = options.shutdown_fd;
  std::thread reader([fd, shutdown_fd, &queue, &reader_error,
                      &shutdown_requested] {
    FrameDecoder decoder;
    char buf[65536];
    bool done = false;
    while (!done) {
      if (shutdown_fd >= 0) {
        // The signal handler writes to the shutdown pipe; a signal landing
        // mid-poll just surfaces as EINTR and the retry sees the byte.
        pollfd fds[2] = {{fd, POLLIN, 0}, {shutdown_fd, POLLIN, 0}};
        int ready = ::poll(fds, 2, -1);
        if (ready < 0) {
          if (errno == EINTR) continue;
          reader_error = std::string("poll: ") + std::strerror(errno);
          break;
        }
        if (fds[1].revents != 0) {
          // Graceful drain: stop pulling the transport; whatever reached
          // the queue is still applied by the engine thread below.
          shutdown_requested.store(true);
          break;
        }
        if (fds[0].revents == 0) continue;
      }
      ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n < 0) {
        if (errno == EINTR) continue;
        reader_error = std::string("read: ") + std::strerror(errno);
        break;
      }
      if (n == 0) break;  // EOF.
      decoder.Append(buf, static_cast<size_t>(n));
      Frame frame;
      for (;;) {
        FrameDecoder::Outcome outcome = decoder.Next(&frame);
        if (outcome == FrameDecoder::Outcome::kNeedMore) break;
        if (outcome == FrameDecoder::Outcome::kError) {
          reader_error = decoder.error();
          done = true;
          break;
        }
        queue.Push({frame, SteadyClock::now()});
      }
    }
    queue.Close();
  });

  IngestLoopResult result;
  core->SetIngestQueue(&queue);
  obs::MetricsRegistry* metrics = core->options().metrics;
  obs::Histogram* latency =
      metrics != nullptr
          ? metrics->GetHistogram("serve.ingest_to_emit_seconds",
                                  obs::LatencySecondsBounds())
          : nullptr;
  Status failure;
  uint64_t samples = 0;
  std::vector<IngestQueue::Item> batch;
  const bool ticking = static_cast<bool>(options.tick);
  const auto period = std::chrono::duration_cast<SteadyClock::duration>(
      std::chrono::duration<double>(options.tick_period_seconds > 0
                                        ? options.tick_period_seconds
                                        : 1.0));
  SteadyClock::time_point next_tick = SteadyClock::now() + period;
  for (;;) {
    const bool alive =
        ticking ? queue.PopAll(&batch, next_tick) : queue.PopAll(&batch);
    if (!alive) break;
    for (IngestQueue::Item& item : batch) {
      ++result.frames;
      // After end/failure: keep draining so a blocked reader can finish,
      // but apply nothing further to the engine.
      if (result.end_seen || !failure.ok()) continue;
      Result<bool> applied = core->OnFrame(item.frame);
      if (!applied.ok()) {
        failure = applied.status();
        queue.Close();
        continue;
      }
      if (!*applied) {
        result.end_seen = true;
        queue.Close();
        continue;
      }
      if (latency != nullptr && item.frame.type == FrameType::kEvent &&
          (samples++ & 15) == 0) {
        latency->Record(SecondsSince(item.arrival));
      }
    }
    if (ticking) {
      options.tick();  // The hook applies its own interval gating.
      if (SteadyClock::now() >= next_tick) {
        next_tick = SteadyClock::now() + period;
      }
    }
  }
  reader.join();
  core->SetIngestQueue(nullptr);
  result.error = reader_error;
  result.shutdown_seen = shutdown_requested.load();
  result.shed = queue.shed();
  result.max_queue_depth = queue.max_depth();
  if (metrics != nullptr) {
    metrics->GetCounter("serve.shed_events")->Add(result.shed);
    metrics->GetGauge("serve.queue_depth")
        ->Set(static_cast<double>(result.max_queue_depth));
  }
  if (!failure.ok()) return failure;
  return result;
}

Result<int> ListenTcp(int port, int* actual_port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return InternalError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status =
        InternalError(std::string("bind: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 8) != 0) {
    Status status =
        InternalError(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (actual_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
      *actual_port = ntohs(bound.sin_port);
    }
  }
  return fd;
}

Result<IngestLoopResult> ServeTcpLoop(ServeCore* core, int listen_fd,
                                      const IngestOptions& options,
                                      void (*banner)(uint32_t connection)) {
  IngestLoopResult total;
  for (;;) {
    if (options.shutdown_fd >= 0 || options.tick) {
      // Between clients: wait for a connection, a shutdown byte, or the
      // next telemetry tick deadline (so /statusz stays fresh while idle).
      pollfd fds[2] = {{listen_fd, POLLIN, 0},
                       {options.shutdown_fd, POLLIN, 0}};
      const nfds_t nfds = options.shutdown_fd >= 0 ? 2 : 1;
      const int timeout_ms =
          options.tick && options.tick_period_seconds > 0
              ? std::max(1, static_cast<int>(options.tick_period_seconds *
                                             1000))
              : -1;
      int ready = ::poll(fds, nfds, timeout_ms);
      if (ready < 0) {
        if (errno == EINTR) continue;
        return InternalError(std::string("poll: ") + std::strerror(errno));
      }
      if (nfds == 2 && fds[1].revents != 0) {
        total.shutdown_seen = true;
        return total;
      }
      if (ready == 0) {
        if (options.tick) options.tick();
        continue;
      }
      if (fds[0].revents == 0) continue;
    }
    int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      return InternalError(std::string("accept: ") + std::strerror(errno));
    }
    if (banner != nullptr) banner(core->connection());
    Result<IngestLoopResult> r = RunIngestLoop(core, conn, options);
    ::close(conn);
    if (!r.ok()) return r.status();
    total.frames += r->frames;
    total.shed += r->shed;
    total.max_queue_depth = std::max(total.max_queue_depth,
                                     r->max_queue_depth);
    if (!r->error.empty()) total.error = r->error;
    if (r->end_seen) {
      total.end_seen = true;
      return total;
    }
    if (r->shutdown_seen) {
      total.shutdown_seen = true;
      return total;
    }
    // Client hung up without kEnd: persist what we have and rotate to a
    // fresh per-connection sink file for the next client.
    MOTTO_RETURN_IF_ERROR(core->BeginConnection());
  }
}

}  // namespace motto::serve
