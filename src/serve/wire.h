#ifndef MOTTO_SERVE_WIRE_H_
#define MOTTO_SERVE_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/time.h"
#include "event/event.h"
#include "event/event_type.h"
#include "event/stream.h"

namespace motto::serve {

/// Compact binary wire format of `motto serve` (DESIGN.md §15).
///
/// A connection is a sequence of frames:
///
///   [u32 length][u8 type][payload: length-1 bytes][u32 crc32]
///
/// `length` counts the type byte plus the payload; the CRC (IEEE 802.3,
/// reflected) covers those same bytes, so a flipped bit anywhere between the
/// length prefix and the checksum is detected. All integers are
/// little-endian; doubles travel as their IEEE-754 bit pattern.
///
/// The first frame of every connection must be a hello frame carrying the
/// magic and the format version — the decoder rejects anything else up
/// front, so a text stream or a stale client fails on byte one instead of
/// corrupting the session.

/// Wire magic: "MOTW" read as a little-endian u32.
inline constexpr uint32_t kWireMagic = 0x57544F4Du;
inline constexpr uint16_t kWireVersion = 1;
/// Frames above this payload size are rejected (a corrupt length prefix
/// must not make the decoder buffer gigabytes).
inline constexpr uint32_t kMaxFramePayload = 1u << 20;

enum class FrameType : uint8_t {
  /// [u32 magic][u16 version] — mandatory first frame.
  kHello = 1,
  /// [u32 wire_type][u8 is_primitive][u16 name_len][name] — binds a
  /// client-chosen dense id to an event-type name before first use.
  kRegisterType = 2,
  /// [u32 wire_type][i64 ts][f64 value][i64 aux] — one primitive event.
  kEvent = 3,
  /// [i64 ts] — advances event time and seals matches decided before `ts`.
  kWatermark = 4,
  /// Flush at the current watermark (emit everything already sealed).
  kFlush = 5,
  /// Force a checkpoint now (in addition to the periodic interval).
  kCheckpoint = 6,
  /// Graceful end of stream: final flush, final checkpoint, shutdown.
  kEnd = 7,
};

std::string_view FrameTypeName(FrameType type);

/// One decoded frame; only the fields of its type are meaningful.
struct Frame {
  FrameType type = FrameType::kHello;
  uint32_t magic = 0;       // kHello
  uint16_t version = 0;     // kHello
  uint32_t wire_type = 0;   // kRegisterType, kEvent
  bool is_primitive = true; // kRegisterType
  std::string name;         // kRegisterType
  Timestamp ts = 0;         // kEvent, kWatermark
  Payload payload;          // kEvent
};

// --- Little-endian primitives (shared with the checkpoint codec) ---

void PutU8(std::string* out, uint8_t v);
void PutU16(std::string* out, uint16_t v);
void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);
void PutI32(std::string* out, int32_t v);
void PutI64(std::string* out, int64_t v);
void PutF64(std::string* out, double v);
void PutString(std::string* out, std::string_view v);  ///< u32 len + bytes.

/// Sequential reader over a byte buffer. Reads past the end set `failed`
/// and return zero values; callers check once at the end instead of after
/// every field.
class ByteReader {
 public:
  ByteReader(const void* data, size_t size)
      : data_(static_cast<const uint8_t*>(data)), size_(size) {}
  explicit ByteReader(std::string_view bytes)
      : ByteReader(bytes.data(), bytes.size()) {}

  uint8_t U8();
  uint16_t U16();
  uint32_t U32();
  uint64_t U64();
  int32_t I32();
  int64_t I64();
  double F64();
  std::string String();  ///< u32 len + bytes.

  bool failed() const { return failed_; }
  size_t remaining() const { return size_ - pos_; }

 private:
  bool Need(size_t n);
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool failed_ = false;
};

/// CRC-32 (IEEE 802.3, reflected, init/final xor 0xFFFFFFFF) over `bytes`.
uint32_t Crc32(std::string_view bytes);

// --- Encoding ---

/// Appends one complete frame (length prefix + type + payload + CRC).
void AppendFrame(std::string* out, FrameType type, std::string_view payload);

void AppendHello(std::string* out);
void AppendRegisterType(std::string* out, uint32_t wire_type,
                        std::string_view name, bool is_primitive);
void AppendEvent(std::string* out, uint32_t wire_type, Timestamp ts,
                 const Payload& payload);
void AppendWatermark(std::string* out, Timestamp ts);
/// For the payload-free control frames (kFlush / kCheckpoint / kEnd).
void AppendControl(std::string* out, FrameType type);

struct EncodeStreamOptions {
  /// Event frames to omit from the front — the resume path: a client
  /// re-sending after recovery skips everything the checkpoint already
  /// ingested (registrations are always sent; they are idempotent).
  uint64_t skip_events = 0;
  /// Event frames to emit after the skip (0 = all remaining). Lets a test
  /// or staged replay feed a stream in slices on frame boundaries.
  uint64_t limit_events = 0;
  /// Append a kEnd frame after the last event.
  bool with_end = true;
  /// Insert a kCheckpoint frame every N event frames (0 = never).
  uint64_t checkpoint_every = 0;
};

/// Encodes a validated primitive stream as one connection: hello,
/// registrations for every type in the registry (wire id == registry id),
/// then the events. This is what `motto wire-encode` and the smoke test
/// drive through the server's stdin.
std::string EncodeStream(const EventStream& stream,
                         const EventTypeRegistry& registry,
                         const EncodeStreamOptions& options =
                             EncodeStreamOptions{});

// --- Decoding ---

/// Incremental frame decoder: feed arbitrary byte chunks (socket reads,
/// pipe reads), pull complete frames. The mandatory hello frame is
/// validated here so every front-end shares the rejection behaviour.
class FrameDecoder {
 public:
  enum class Outcome {
    kFrame,     ///< `*out` holds the next frame.
    kNeedMore,  ///< No complete frame buffered; Append more bytes.
    kError,     ///< Stream is corrupt; `error()` says why. Terminal.
  };

  void Append(const void* data, size_t size);

  /// Decodes the next buffered frame into `*out`.
  Outcome Next(Frame* out);

  const std::string& error() const { return error_; }
  /// Bytes buffered but not yet consumed by complete frames.
  size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  Outcome Fail(std::string message);

  std::string buffer_;
  size_t consumed_ = 0;
  bool saw_hello_ = false;
  bool failed_ = false;
  std::string error_;
};

}  // namespace motto::serve

#endif  // MOTTO_SERVE_WIRE_H_
