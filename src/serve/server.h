#ifndef MOTTO_SERVE_SERVER_H_
#define MOTTO_SERVE_SERVER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ccl/pattern.h"
#include "common/result.h"
#include "engine/executor.h"
#include "event/event_type.h"
#include "event/stream.h"
#include "motto/churn.h"
#include "serve/checkpoint.h"
#include "serve/wire.h"

namespace motto::obs {
struct Counter;
}  // namespace motto::obs

namespace motto::serve {

class IngestQueue;

/// `motto serve` (DESIGN.md §15): a long-running ingest server over the
/// streaming Executor session API. ServeCore is the transport-independent
/// state machine — frames in, durable match lines out — shared by the stdin
/// pipe, the TCP front-end, the recovery differ (which "kills" a core by
/// abandoning it mid-stream) and the ingest benchmark.
///
/// Output-commit discipline: matches accumulate inside the executor session
/// and only reach the per-connection output file as part of a checkpoint —
/// snapshot first (carrying the undelivered outbox), then append. Recovery
/// truncates the output file to the snapshot's released-line count and
/// re-appends the snapshot's outbox, so the union of pre-kill durable
/// output and post-recovery output is exactly the uninterrupted run's match
/// multiset: no loss, no duplication, for a kill at *any* frame boundary —
/// including between the checkpoint rename and the release append.

struct ServeOptions {
  /// Empty disables durability: matches are still released in checkpoint-
  /// sized batches, but no snapshot is written (bench / ephemeral mode).
  std::string checkpoint_dir;
  /// Checkpoint every N ingested event frames (0 = only explicit
  /// kCheckpoint frames and the final one).
  uint64_t checkpoint_interval = 10000;
  /// Snapshots retained after each save.
  int keep_checkpoints = 2;
  /// Directory of per-connection match files ("conn<k>.matches"); empty
  /// discards released matches after counting them (bench mode).
  std::string out_dir;
  EvalOrderMode eval_order = EvalOrderMode::kArrival;
  /// Must keep OptimizerMode::kMotto (WorkloadSession requirement).
  OptimizerOptions optimizer;
  obs::MetricsRegistry* metrics = nullptr;
};

struct RecoveryInfo {
  bool recovered = false;
  uint64_t checkpoint_seq = 0;
  uint64_t ingested = 0;
  Timestamp watermark = 0;
  size_t nodes_kept = 0;
  size_t nodes_fresh = 0;
  size_t imports_failed = 0;
  /// Torn snapshots skipped, registry reconciliation notes.
  std::vector<std::string> warnings;
};

class ServeCore {
 public:
  /// Optimizes `workload` against `stats`, then recovers from the latest
  /// valid checkpoint in options.checkpoint_dir (if any): node states are
  /// imported by physical plan-node key, the output file is repaired to the
  /// snapshot's horizon, and recovery() reports the resume offset a client
  /// re-sends from.
  static Result<std::unique_ptr<ServeCore>> Create(
      const std::vector<Query>& workload, const EventTypeRegistry& registry,
      StreamStats stats, ServeOptions options);

  ~ServeCore();
  ServeCore(const ServeCore&) = delete;
  ServeCore& operator=(const ServeCore&) = delete;

  /// Applies one frame. Returns false when the frame was kEnd (caller then
  /// calls Finish), true otherwise. Protocol-level anomalies (unknown wire
  /// type, late event) are counted and dropped, not errors.
  Result<bool> OnFrame(const Frame& frame);

  /// Snapshot + release now (also used by the periodic interval).
  Status Checkpoint();

  /// Graceful shutdown: final flush (all windows expire), final checkpoint,
  /// final release. Returns the session result of this process's lifetime
  /// (counts since the last recovery, not since stream start).
  Result<RunResult> Finish();

  /// Rotates to the next per-connection output file (TCP front-end, after
  /// a client hangs up without kEnd): releases pending output to the old
  /// file first, then starts "conn<k+1>.matches" fresh.
  Status BeginConnection();

  const RecoveryInfo& recovery() const { return recovery_; }
  const ServeOptions& options() const { return options_; }
  /// Event frames ingested across the session's whole life (survives
  /// recovery — this is the client's resume offset).
  uint64_t ingested() const { return ingested_; }
  Timestamp watermark() const { return watermark_; }
  uint64_t checkpoints_taken() const { return seq_; }
  uint32_t connection() const { return connection_; }
  const Jqp& jqp() const;
  const std::map<std::string, uint64_t>& sink_released() const {
    return sink_released_;
  }
  /// Engine-thread telemetry access (session sink counts, node stats).
  const Executor& executor() const { return *executor_; }
  /// Seconds since the last successful checkpoint save (process start when
  /// none happened yet). Telemetry's checkpoint-age signal.
  double seconds_since_checkpoint() const;
  /// The live ingest queue while an ingest loop drives this core (set by
  /// RunIngestLoop, engine thread only); null between connections.
  void SetIngestQueue(const IngestQueue* queue) { ingest_queue_ = queue; }
  const IngestQueue* ingest_queue() const { return ingest_queue_; }
  /// Path of the current connection's output file ("" in discard mode).
  std::string OutputPath() const;

  /// Test-only fault injection: the next Checkpoint() makes the snapshot
  /// durable and then fails *before* releasing the outbox — the recovery
  /// differ's "killed between rename and release" case.
  void FailNextReleaseForTest() { fault_skip_release_once_ = true; }

 private:
  ServeCore() = default;

  Status RecoverOrStart();
  Status ImportCheckpoint(const CheckpointState& state);
  /// Drains the session outbox in deterministic sink order.
  std::vector<std::pair<std::string, Event>> DrainOutbox();
  std::vector<std::pair<std::string, Event>> FlattenSinkEvents(
      std::unordered_map<std::string, std::vector<Event>>* sink_events);
  CheckpointState BuildCheckpoint(
      std::vector<std::pair<std::string, Event>> outbox);
  Status SaveAndRelease(std::vector<std::pair<std::string, Event>> outbox);
  /// Rewrites the current output file to exactly `released_lines` complete
  /// lines plus `outbox`, then reopens it for appending.
  Status RepairOutput(uint64_t released_lines,
                      const std::vector<std::pair<std::string, Event>>& outbox);
  Status ReleaseOutbox(
      const std::vector<std::pair<std::string, Event>>& outbox);
  void CountReleased(const std::vector<std::pair<std::string, Event>>& outbox);

  ServeOptions options_;
  EventTypeRegistry registry_;
  std::optional<WorkloadSession> session_;
  std::optional<Executor> executor_;
  std::vector<std::string> keys_;        ///< Physical key per jqp node.
  std::vector<std::string> sink_names_;  ///< Jqp sink order (release order).
  std::unordered_map<uint32_t, EventTypeId> wire_map_;
  RecoveryInfo recovery_;
  /// Hot-path instruments resolved once at Create (GetCounter is a map
  /// lookup; OnFrame bumps these per frame). Null when metrics are off.
  obs::Counter* frames_counter_ = nullptr;
  obs::Counter* ingested_counter_ = nullptr;

  uint64_t ingested_ = 0;
  uint64_t seq_ = 0;  ///< Next checkpoint sequence number.
  Timestamp watermark_ = std::numeric_limits<Timestamp>::min();
  uint32_t connection_ = 0;
  uint64_t released_lines_ = 0;  ///< Complete lines in the current file.
  std::map<std::string, uint64_t> sink_released_;
  std::FILE* out_ = nullptr;
  bool finished_ = false;
  bool fault_skip_release_once_ = false;
  const IngestQueue* ingest_queue_ = nullptr;
  std::chrono::steady_clock::time_point last_checkpoint_time_ =
      std::chrono::steady_clock::now();
};

/// Bounded handoff between the transport reader thread and the engine
/// thread. Control frames always block when full (losing a checkpoint or
/// end frame is never acceptable); event frames block or shed per policy.
class IngestQueue {
 public:
  struct Item {
    Frame frame;
    std::chrono::steady_clock::time_point arrival;
  };

  IngestQueue(size_t capacity, bool shed_events)
      : capacity_(capacity == 0 ? 1 : capacity), shed_events_(shed_events) {}

  /// False when the item was shed (event frames under the shed policy).
  bool Push(Item item);
  /// Blocks for items; moves everything buffered into `*out`. False when
  /// the queue is closed and drained.
  bool PopAll(std::vector<Item>* out);
  /// Timed variant for telemetry ticks: waits until `deadline`, then
  /// returns true with `*out` empty so the caller can tick and re-poll.
  /// Still false only when the queue is closed and drained.
  bool PopAll(std::vector<Item>* out,
              std::chrono::steady_clock::time_point deadline);
  void Close();

  uint64_t shed() const;
  size_t max_depth() const;
  size_t depth() const;
  size_t capacity() const { return capacity_; }

 private:
  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::condition_variable space_;
  std::deque<Item> items_;
  size_t capacity_;
  bool shed_events_;
  bool closed_ = false;
  uint64_t shed_count_ = 0;
  size_t max_depth_ = 0;
};

struct IngestOptions {
  size_t queue_capacity = 4096;
  /// Admission policy when the queue is full: false = block the transport
  /// (backpressure), true = shed the incoming event frame and count it.
  bool shed = false;
  /// Graceful-shutdown signal: when >= 0 the reader thread also polls this
  /// fd (the read end of a signal self-pipe); once readable it stops
  /// reading the transport, the engine drains what is queued, and the loop
  /// returns with shutdown_seen set.
  int shutdown_fd = -1;
  /// Telemetry hook, invoked on the engine thread between frame batches
  /// and at least every `tick_period_seconds` even when the stream is idle
  /// (the queue wait is bounded by the tick deadline).
  std::function<void()> tick;
  double tick_period_seconds = 1.0;
};

struct IngestLoopResult {
  /// A kEnd frame arrived (caller runs Finish + clean shutdown).
  bool end_seen = false;
  /// The shutdown fd fired: the queue was drained into the engine and the
  /// caller should Finish (final checkpoint + final snapshot) and exit 0.
  bool shutdown_seen = false;
  /// Decoder/protocol failure, empty when the stream was well-formed.
  std::string error;
  uint64_t frames = 0;
  uint64_t shed = 0;
  size_t max_queue_depth = 0;
};

/// Pumps frames from `fd` (pipe or socket) through an IngestQueue into
/// `core` until end-of-stream, kEnd, or a decode error: the transport is
/// read on a dedicated thread; decoding and the engine run on the calling
/// thread. Ingest-to-emit latency (queue wait + engine application) is
/// sampled into "serve.ingest_to_emit_seconds" when `core` has metrics.
Result<IngestLoopResult> RunIngestLoop(ServeCore* core, int fd,
                                       const IngestOptions& options);

/// Binds and listens on 127.0.0.1:`port` (0 = ephemeral). Returns the fd;
/// `*actual_port` gets the bound port.
Result<int> ListenTcp(int port, int* actual_port);

/// Accepts one client at a time on `listen_fd`, running each connection
/// through RunIngestLoop. A client hangup without kEnd checkpoints and
/// rotates to the next connection file; kEnd ends the loop (caller
/// finishes). `banner` (if non-null) is invoked after each accept.
Result<IngestLoopResult> ServeTcpLoop(ServeCore* core, int listen_fd,
                                      const IngestOptions& options,
                                      void (*banner)(uint32_t connection));

}  // namespace motto::serve

#endif  // MOTTO_SERVE_SERVER_H_
