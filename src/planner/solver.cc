#include "planner/solver.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <functional>
#include <limits>

#include "common/check.h"
#include "common/rng.h"
#include "obs/opt_trace.h"

namespace motto {

namespace {

using Clock = std::chrono::steady_clock;

double ChoiceCost(const SharingGraph& graph, int32_t node, int32_t choice) {
  if (choice == kNodeFromGround) {
    return graph.nodes[static_cast<size_t>(node)].scratch_cost;
  }
  MOTTO_CHECK_GE(choice, 0);
  return graph.edges[static_cast<size_t>(choice)].cost;
}

std::vector<std::vector<int32_t>> InEdgesByTarget(const SharingGraph& graph) {
  std::vector<std::vector<int32_t>> in_edges(graph.nodes.size());
  for (size_t e = 0; e < graph.edges.size(); ++e) {
    in_edges[static_cast<size_t>(graph.edges[e].target)].push_back(
        static_cast<int32_t>(e));
  }
  return in_edges;
}

/// Computes the active closure of `choice` (terminals plus transitively
/// referenced sources) and its cost; normalizes unused nodes to
/// kNodeNotSelected. Returns the cost.
double Normalize(const SharingGraph& graph, std::vector<int32_t>* choice) {
  size_t n = graph.nodes.size();
  std::vector<bool> active(n, false);
  std::vector<int32_t> stack;
  for (size_t v = 0; v < n; ++v) {
    if (graph.nodes[v].terminal) {
      active[v] = true;
      stack.push_back(static_cast<int32_t>(v));
    }
  }
  while (!stack.empty()) {
    int32_t v = stack.back();
    stack.pop_back();
    int32_t c = (*choice)[static_cast<size_t>(v)];
    if (c >= 0) {
      int32_t src = graph.edges[static_cast<size_t>(c)].source;
      if (!active[static_cast<size_t>(src)]) {
        active[static_cast<size_t>(src)] = true;
        stack.push_back(src);
      }
    }
  }
  double cost = 0.0;
  for (size_t v = 0; v < n; ++v) {
    if (!active[v]) {
      (*choice)[v] = kNodeNotSelected;
      continue;
    }
    if ((*choice)[v] == kNodeNotSelected) (*choice)[v] = kNodeFromGround;
    cost += ChoiceCost(graph, static_cast<int32_t>(v), (*choice)[v]);
  }
  return cost;
}

}  // namespace

double DefaultPlanCost(const SharingGraph& graph) {
  double cost = 0.0;
  for (const SharingNode& node : graph.nodes) {
    if (node.terminal) cost += node.scratch_cost;
  }
  return cost;
}

PlanDecision NaivePlan(const SharingGraph& graph) {
  PlanDecision decision;
  decision.choice.assign(graph.nodes.size(), kNodeNotSelected);
  for (size_t v = 0; v < graph.nodes.size(); ++v) {
    if (graph.nodes[v].terminal) decision.choice[v] = kNodeFromGround;
  }
  decision.cost = DefaultPlanCost(graph);
  decision.exact = graph.edges.empty();
  return decision;
}

Result<double> ValidateDecision(const SharingGraph& graph,
                                const PlanDecision& decision) {
  if (decision.choice.size() != graph.nodes.size()) {
    return InvalidArgumentError("decision size mismatch");
  }
  double cost = 0.0;
  for (size_t v = 0; v < graph.nodes.size(); ++v) {
    int32_t c = decision.choice[v];
    if (c == kNodeNotSelected) {
      if (graph.nodes[v].terminal) {
        return InvalidArgumentError("terminal node not selected");
      }
      continue;
    }
    if (c != kNodeFromGround) {
      if (c < 0 || c >= static_cast<int32_t>(graph.edges.size())) {
        return InvalidArgumentError("choice out of range");
      }
      const SharingEdge& edge = graph.edges[static_cast<size_t>(c)];
      if (edge.target != static_cast<int32_t>(v)) {
        return InvalidArgumentError("edge target mismatch");
      }
      if (decision.choice[static_cast<size_t>(edge.source)] ==
          kNodeNotSelected) {
        return InvalidArgumentError("edge source not selected");
      }
    }
    cost += ChoiceCost(graph, static_cast<int32_t>(v), c);
  }
  return cost;
}

PlanDecision SolveBranchAndBound(const SharingGraph& graph,
                                 double budget_seconds,
                                 obs::OptimizerProbe* probe) {
  Clock::time_point start = Clock::now();
  size_t n = graph.nodes.size();
  std::vector<std::vector<int32_t>> in_edges = InEdgesByTarget(graph);

  // Admissible per-node lower bound: the cheapest way to obtain the node,
  // ignoring source activation costs.
  std::vector<double> min_cost(n);
  for (size_t v = 0; v < n; ++v) {
    double best = graph.nodes[v].scratch_cost;
    for (int32_t e : in_edges[v]) {
      best = std::min(best, graph.edges[static_cast<size_t>(e)].cost);
    }
    min_cost[v] = best;
  }

  PlanDecision best = NaivePlan(graph);
  best.exact = false;

  enum NodeState : uint8_t { kFree = 0, kPending = 1, kAssigned = 2 };
  std::vector<uint8_t> state(n, kFree);
  std::vector<int32_t> choice(n, kNodeNotSelected);
  std::vector<int32_t> pending;  // Required nodes awaiting a choice.
  for (size_t v = 0; v < n; ++v) {
    if (graph.nodes[v].terminal) {
      pending.push_back(static_cast<int32_t>(v));
      state[v] = kPending;
    }
  }
  // Process high-fan-in nodes last so cheap forced choices come early.
  std::sort(pending.begin(), pending.end(), [&](int32_t a, int32_t b) {
    return in_edges[static_cast<size_t>(a)].size() >
           in_edges[static_cast<size_t>(b)].size();
  });

  bool deadline_hit = false;
  uint64_t expansions = 0;
  uint64_t pruned_by_bound = 0;
  uint64_t options_considered = 0;
  if (probe != nullptr) {
    // The naive plan seeds the incumbent before any search happens.
    probe->bnb.incumbents.push_back(obs::BnbIncumbent{best.cost, 0, 0.0});
  }

  // DFS over assignments for `pending` (treated as a stack).
  std::function<void(double, double)> dfs = [&](double current,
                                                double bound_rest) {
    if (deadline_hit) return;
    if ((++expansions & 1023) == 0) {
      double elapsed =
          std::chrono::duration<double>(Clock::now() - start).count();
      if (elapsed > budget_seconds) {
        deadline_hit = true;
        return;
      }
    }
    if (current + bound_rest >= best.cost) {
      ++pruned_by_bound;
      return;
    }
    if (pending.empty()) {
      best.choice = choice;
      best.cost = current;
      if (probe != nullptr) {
        double elapsed =
            std::chrono::duration<double>(Clock::now() - start).count();
        if (probe->bnb.first_incumbent_seconds < 0) {
          probe->bnb.first_incumbent_seconds = elapsed;
        }
        probe->bnb.incumbents.push_back(
            obs::BnbIncumbent{best.cost, expansions, elapsed});
      }
      return;
    }
    int32_t v = pending.back();
    pending.pop_back();
    state[static_cast<size_t>(v)] = kAssigned;
    double v_bound = min_cost[static_cast<size_t>(v)];

    // Candidate options sorted by optimistic cost.
    struct Option {
      int32_t choice;
      double cost;        // Immediate cost of the option.
      double optimistic;  // cost + activation estimate for a new source.
    };
    std::vector<Option> options;
    options.push_back(
        Option{kNodeFromGround, graph.nodes[static_cast<size_t>(v)].scratch_cost,
               graph.nodes[static_cast<size_t>(v)].scratch_cost});
    for (int32_t e : in_edges[static_cast<size_t>(v)]) {
      const SharingEdge& edge = graph.edges[static_cast<size_t>(e)];
      double extra = state[static_cast<size_t>(edge.source)] == kFree
                         ? min_cost[static_cast<size_t>(edge.source)]
                         : 0.0;
      options.push_back(Option{e, edge.cost, edge.cost + extra});
    }
    std::sort(options.begin(), options.end(),
              [](const Option& a, const Option& b) {
                return a.optimistic < b.optimistic;
              });
    options_considered += options.size();

    for (const Option& option : options) {
      if (deadline_hit) break;
      choice[static_cast<size_t>(v)] = option.choice;
      bool activated_source = false;
      int32_t src = -1;
      if (option.choice >= 0) {
        src = graph.edges[static_cast<size_t>(option.choice)].source;
        if (state[static_cast<size_t>(src)] == kFree) {
          // Source becomes required: it must receive its own choice later.
          pending.push_back(src);
          state[static_cast<size_t>(src)] = kPending;
          activated_source = true;
        }
      }
      double extra_bound =
          activated_source ? min_cost[static_cast<size_t>(src)] : 0.0;
      dfs(current + option.cost, bound_rest - v_bound + extra_bound);
      if (activated_source) {
        pending.pop_back();
        state[static_cast<size_t>(src)] = kFree;
      }
    }
    choice[static_cast<size_t>(v)] = kNodeNotSelected;
    state[static_cast<size_t>(v)] = kPending;
    pending.push_back(v);
  };

  double initial_bound = 0.0;
  for (int32_t v : pending) initial_bound += min_cost[static_cast<size_t>(v)];
  dfs(0.0, initial_bound);

  best.exact = !deadline_hit;
  best.solve_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  // Normalize: drop unused Steiner selections (defensive; DFS assigns only
  // required nodes).
  best.cost = Normalize(graph, &best.choice);
  if (probe != nullptr) {
    obs::BnbTelemetry& t = probe->bnb;
    t.expansions = expansions;
    t.pruned_by_bound = pruned_by_bound;
    t.options_considered = options_considered;
    t.deadline_hit = deadline_hit;
    t.solve_seconds = best.solve_seconds;
    t.recorded = true;
  }
  return best;
}

PlanDecision SolveSimulatedAnnealing(const SharingGraph& graph, uint64_t seed,
                                     int iterations,
                                     obs::OptimizerProbe* probe) {
  Clock::time_point start = Clock::now();
  Rng rng(seed);
  size_t n = graph.nodes.size();
  std::vector<std::vector<int32_t>> in_edges = InEdgesByTarget(graph);

  std::vector<int32_t> current(n, kNodeNotSelected);
  double current_cost = Normalize(graph, &current);
  std::vector<int32_t> best_choice = current;
  double best_cost = current_cost;

  if (probe != nullptr) {
    probe->sa.seed = seed;
    probe->sa.iterations = iterations;
  }

  // Nodes worth mutating: those with at least one in-edge.
  std::vector<int32_t> mutable_nodes;
  for (size_t v = 0; v < n; ++v) {
    if (!in_edges[v].empty()) mutable_nodes.push_back(static_cast<int32_t>(v));
  }
  if (mutable_nodes.empty() || iterations <= 0) {
    PlanDecision decision;
    decision.choice = std::move(current);
    decision.cost = current_cost;
    decision.exact = graph.edges.empty();
    decision.solve_seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (probe != nullptr) probe->sa.recorded = true;  // Nothing to anneal.
    return decision;
  }

  double t0 = std::max(1e-9, 0.1 * DefaultPlanCost(graph));
  double t_end = t0 * 1e-4;
  double cooling = std::pow(t_end / t0, 1.0 / iterations);
  double temperature = t0;

  // Acceptance telemetry is bucketed into ~kSaEpochTarget epochs.
  const int epoch_size =
      std::max(1, iterations / obs::kSaEpochTarget);
  obs::SaEpoch epoch;
  if (probe != nullptr) {
    obs::SaTelemetry& t = probe->sa;
    t.epoch_size = epoch_size;
    t.t0 = t0;
    t.t_end = t_end;
    t.cooling = cooling;
    epoch.temperature = temperature;
  }

  for (int it = 0; it < iterations; ++it, temperature *= cooling) {
    int32_t v = mutable_nodes[static_cast<size_t>(
        rng.Uniform(0, static_cast<int64_t>(mutable_nodes.size()) - 1))];
    const std::vector<int32_t>& candidates = in_edges[static_cast<size_t>(v)];
    int64_t pick = rng.Uniform(-1, static_cast<int64_t>(candidates.size()) - 1);
    int32_t proposal =
        pick < 0 ? kNodeFromGround : candidates[static_cast<size_t>(pick)];
    std::vector<int32_t> next = current;
    next[static_cast<size_t>(v)] = proposal;
    double next_cost = Normalize(graph, &next);
    double delta = next_cost - current_cost;
    bool take = delta <= 0 || rng.NextDouble() < std::exp(-delta / temperature);
    if (take) {
      current = std::move(next);
      current_cost = next_cost;
      if (current_cost < best_cost) {
        best_cost = current_cost;
        best_choice = current;
        if (probe != nullptr) ++epoch.improved_best;
      }
    }
    if (probe != nullptr) {
      ++epoch.proposed;
      if (take) ++epoch.accepted;
      if ((it + 1) % epoch_size == 0 || it + 1 == iterations) {
        epoch.current_cost = current_cost;
        epoch.best_cost = best_cost;
        probe->sa.proposed += epoch.proposed;
        probe->sa.accepted += epoch.accepted;
        probe->sa.epochs.push_back(epoch);
        epoch = obs::SaEpoch{};
        epoch.temperature = temperature * cooling;  // Next iteration's.
      }
    }
  }

  PlanDecision decision;
  decision.choice = std::move(best_choice);
  decision.cost = best_cost;
  decision.exact = false;
  decision.solve_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  if (probe != nullptr) probe->sa.recorded = true;
  return decision;
}

PlanDecision SelectPlan(const SharingGraph& graph,
                        const PlannerOptions& options) {
  obs::OptimizerProbe* probe = options.probe;
  if (graph.edges.empty()) {
    if (probe != nullptr) probe->selected_solver = "naive";
    return NaivePlan(graph);
  }
  if (options.force_approximate) {
    if (probe != nullptr) probe->selected_solver = "sa";
    return SolveSimulatedAnnealing(graph, options.seed, options.sa_iterations,
                                   probe);
  }
  PlanDecision exact =
      SolveBranchAndBound(graph, options.exact_budget_seconds, probe);
  if (exact.exact) {
    if (probe != nullptr) probe->selected_solver = "bnb";
    return exact;
  }
  PlanDecision approx = SolveSimulatedAnnealing(graph, options.seed,
                                                options.sa_iterations, probe);
  approx.solve_seconds += exact.solve_seconds;
  const bool sa_wins = approx.cost < exact.cost;
  if (probe != nullptr) {
    probe->selected_solver = sa_wins ? "sa" : "bnb-incumbent";
  }
  return sa_wins ? approx : exact;
}

}  // namespace motto
