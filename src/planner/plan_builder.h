#ifndef MOTTO_PLANNER_PLAN_BUILDER_H_
#define MOTTO_PLANNER_PLAN_BUILDER_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "engine/graph.h"
#include "motto/catalog.h"
#include "motto/sharing_graph.h"
#include "planner/solver.h"

namespace motto {

/// Where one executable node came from: the sharing node whose output it
/// computes (or helps compute), the sharing edge that prescribed it (-1 for
/// from-ground realizations), and its role in the rewrite's materialization
/// (a merge-ordered edge, e.g., emits a kMerge CONJ plus a kOrderFilter).
struct PlanNodeOrigin {
  enum class Role : uint8_t { kPattern, kMerge, kOrderFilter, kSpanFilter };
  int32_t sharing_node = -1;
  int32_t edge = -1;
  Role role = Role::kPattern;
};

std::string_view PlanNodeRoleName(PlanNodeOrigin::Role role);

/// Sharing provenance of a built plan, parallel to Jqp::nodes:
/// provenance.nodes[i] describes jqp.nodes[i].
struct PlanProvenance {
  std::vector<PlanNodeOrigin> nodes;
};

/// Materializes a plan decision over a sharing graph into an executable
/// jumbo query plan: one pattern node per ground-computed node, and the
/// rewrite operators (composite-operand matchers, merge + order filters,
/// span filters, DISJ rebinds) prescribed by each chosen sharing edge.
/// A non-null `provenance` receives one origin record per emitted node.
Result<Jqp> BuildJqp(const SharingGraph& graph, const PlanDecision& decision,
                     const CompositeCatalog& catalog,
                     EventTypeRegistry* registry,
                     PlanProvenance* provenance = nullptr);

}  // namespace motto

#endif  // MOTTO_PLANNER_PLAN_BUILDER_H_
