#ifndef MOTTO_PLANNER_PLAN_BUILDER_H_
#define MOTTO_PLANNER_PLAN_BUILDER_H_

#include "common/result.h"
#include "engine/graph.h"
#include "motto/catalog.h"
#include "motto/sharing_graph.h"
#include "planner/solver.h"

namespace motto {

/// Materializes a plan decision over a sharing graph into an executable
/// jumbo query plan: one pattern node per ground-computed node, and the
/// rewrite operators (composite-operand matchers, merge + order filters,
/// span filters, DISJ rebinds) prescribed by each chosen sharing edge.
Result<Jqp> BuildJqp(const SharingGraph& graph, const PlanDecision& decision,
                     const CompositeCatalog& catalog,
                     EventTypeRegistry* registry);

}  // namespace motto

#endif  // MOTTO_PLANNER_PLAN_BUILDER_H_
