#ifndef MOTTO_PLANNER_PLAN_BUILDER_H_
#define MOTTO_PLANNER_PLAN_BUILDER_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "cost/order_planner.h"
#include "engine/graph.h"
#include "event/stream.h"
#include "motto/catalog.h"
#include "motto/sharing_graph.h"
#include "planner/solver.h"

namespace motto {

/// Where one executable node came from: the sharing node whose output it
/// computes (or helps compute), the sharing edge that prescribed it (-1 for
/// from-ground realizations), and its role in the rewrite's materialization
/// (a merge-ordered edge, e.g., emits a kMerge CONJ plus a kOrderFilter).
struct PlanNodeOrigin {
  enum class Role : uint8_t { kPattern, kMerge, kOrderFilter, kSpanFilter };
  int32_t sharing_node = -1;
  int32_t edge = -1;
  Role role = Role::kPattern;
};

std::string_view PlanNodeRoleName(PlanNodeOrigin::Role role);

/// Sharing provenance of a built plan, parallel to Jqp::nodes:
/// provenance.nodes[i] describes jqp.nodes[i].
struct PlanProvenance {
  std::vector<PlanNodeOrigin> nodes;
};

/// Materializes a plan decision over a sharing graph into an executable
/// jumbo query plan: one pattern node per ground-computed node, and the
/// rewrite operators (composite-operand matchers, merge + order filters,
/// span filters, DISJ rebinds) prescribed by each chosen sharing edge.
/// A non-null `provenance` receives one origin record per emitted node.
Result<Jqp> BuildJqp(const SharingGraph& graph, const PlanDecision& decision,
                     const CompositeCatalog& catalog,
                     EventTypeRegistry* registry,
                     PlanProvenance* provenance = nullptr);

/// Plans the selectivity evaluation order of every eligible pattern node of
/// a built plan (SEQ/CONJ with 2..kMaxLazyOperands operands) and installs
/// it into PatternSpec::eval_order, so a kSelectivity run anchors each node
/// on its rarest operand (DESIGN.md §13). Effective operand rates are
/// propagated in topological order exactly as the cost predictions are:
/// raw-channel operands sum the stream rates of their accepted types times
/// the binding predicate's selectivity; composite operands inherit the
/// producing node's estimated output rate.
///
/// `node_multipliers` optionally supplies a per-node calibration cost
/// multiplier, parallel to jqp->nodes (empty or non-positive entries mean
/// 1.0); see PlanEvalOrder. Returns one OrderPlan per node, parallel to
/// jqp->nodes (default-constructed for ineligible nodes and filters).
std::vector<OrderPlan> AnnotateEvalOrders(
    Jqp* jqp, const StreamStats& stats,
    const std::vector<double>& node_multipliers = {});

}  // namespace motto

#endif  // MOTTO_PLANNER_PLAN_BUILDER_H_
