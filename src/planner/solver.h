#ifndef MOTTO_PLANNER_SOLVER_H_
#define MOTTO_PLANNER_SOLVER_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "motto/sharing_graph.h"

namespace motto::obs {
struct OptimizerProbe;
}  // namespace motto::obs

namespace motto {

/// Per-node decision in a plan: not executed, computed from the raw stream
/// (edge from the virtual ground q0), or computed from another node via the
/// sharing edge with the given index.
inline constexpr int32_t kNodeNotSelected = -2;
inline constexpr int32_t kNodeFromGround = -1;

/// A solution of the DSMT instance induced by a sharing graph: a tree rooted
/// at the virtual ground spanning all terminals (paper §V-B).
struct PlanDecision {
  /// choice[v]: kNodeNotSelected, kNodeFromGround, or an edge index whose
  /// target is v.
  std::vector<int32_t> choice;
  double cost = 0.0;
  bool exact = false;
  double solve_seconds = 0.0;
};

/// Cost of the default (no sharing) plan: every terminal from ground.
double DefaultPlanCost(const SharingGraph& graph);

/// The default plan itself.
PlanDecision NaivePlan(const SharingGraph& graph);

/// Recomputes the cost of `decision` and verifies consistency (every
/// selected node has a valid choice, every edge source is selected, all
/// terminals selected). Returns an error for inconsistent decisions.
Result<double> ValidateDecision(const SharingGraph& graph,
                                const PlanDecision& decision);

/// Exact branch-and-bound DSMT solver. Explores per-node source choices in
/// best-first order with an admissible lower bound. Returns the optimal
/// decision, or — when `budget_seconds` elapses first — the best incumbent
/// with exact=false. A non-null `probe` receives search telemetry
/// (expansions, bound prunes, incumbent timeline) into probe->bnb.
PlanDecision SolveBranchAndBound(const SharingGraph& graph,
                                 double budget_seconds,
                                 obs::OptimizerProbe* probe = nullptr);

/// Simulated-annealing approximation (paper §V-B for large workloads):
/// states are per-node source choices; activation closure and cost are
/// recomputed per move; geometric cooling. A non-null `probe` receives the
/// temperature schedule and per-epoch acceptance trace into probe->sa;
/// the trace carries no wall-clock data, so it is byte-identical for the
/// same (graph, seed, iterations).
PlanDecision SolveSimulatedAnnealing(const SharingGraph& graph, uint64_t seed,
                                     int iterations,
                                     obs::OptimizerProbe* probe = nullptr);

struct PlannerOptions {
  double exact_budget_seconds = 5.0;
  int sa_iterations = 20000;
  uint64_t seed = 1;
  /// Skip the exact solver entirely (paper: large workloads).
  bool force_approximate = false;
  /// Optional observability sink (obs/opt_trace.h) filled by whichever
  /// solvers SelectPlan runs; also records which decision won.
  obs::OptimizerProbe* probe = nullptr;
};

/// The paper's policy: exact within the budget, otherwise the approximate
/// solution (whichever of incumbent/SA is better).
PlanDecision SelectPlan(const SharingGraph& graph,
                        const PlannerOptions& options);

}  // namespace motto

#endif  // MOTTO_PLANNER_SOLVER_H_
