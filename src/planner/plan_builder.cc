#include "planner/plan_builder.h"

#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <variant>

#include "common/check.h"
#include "engine/matcher.h"

namespace motto {

namespace {

/// Slot ranges of a pattern's operands: operand i owns output slots
/// [base[i], base[i] + arity_i).
struct SlotLayout {
  std::vector<int32_t> base;
  int32_t total = 0;
};

SlotLayout LayoutOf(const FlatPattern& pattern, const CompositeCatalog& catalog,
                    const EventTypeRegistry& registry) {
  SlotLayout layout;
  layout.base.reserve(pattern.operands.size());
  for (EventTypeId type : pattern.operands) {
    layout.base.push_back(layout.total);
    layout.total += catalog.ArityOf(type, registry);
  }
  return layout;
}

/// Identity slot map for a producer with `arity` slots, offset by `base`.
std::vector<int32_t> OffsetSlotMap(int32_t arity, int32_t base) {
  std::vector<int32_t> map(static_cast<size_t>(arity));
  for (int32_t s = 0; s < arity; ++s) map[static_cast<size_t>(s)] = base + s;
  return map;
}

class Builder {
 public:
  Builder(const SharingGraph& graph, const PlanDecision& decision,
          const CompositeCatalog& catalog, EventTypeRegistry* registry,
          PlanProvenance* provenance)
      : graph_(graph),
        decision_(decision),
        catalog_(catalog),
        registry_(registry),
        provenance_(provenance),
        exec_node_(graph.nodes.size(), -1) {}

  Result<Jqp> Build() {
    if (decision_.choice.size() != graph_.nodes.size()) {
      return InvalidArgumentError("decision does not match sharing graph");
    }
    for (size_t v = 0; v < graph_.nodes.size(); ++v) {
      if (decision_.choice[v] != kNodeNotSelected) {
        MOTTO_RETURN_IF_ERROR(Realize(static_cast<int32_t>(v)));
      }
    }
    for (size_t v = 0; v < graph_.nodes.size(); ++v) {
      const SharingNode& node = graph_.nodes[v];
      if (decision_.choice[v] == kNodeNotSelected) continue;
      for (const std::string& name : node.query_names) {
        jqp_.sinks.push_back(Jqp::Sink{name, exec_node_[v]});
      }
    }
    return std::move(jqp_);
  }

 private:
  /// Executable node producing the output of sharing node `v` (realizing it
  /// and its dependencies on demand).
  Status Realize(int32_t v) {
    size_t uv = static_cast<size_t>(v);
    if (exec_node_[uv] != -1) return Status::Ok();
    if (in_progress_.count(v) > 0) {
      return InternalError("cyclic plan dependency");
    }
    in_progress_.insert(v);
    const SharingNode& node = graph_.nodes[uv];
    int32_t c = decision_.choice[uv];
    if (c == kNodeNotSelected) {
      return InternalError("node " + node.key +
                           " needed but not selected by the planner");
    }
    Status status =
        c == kNodeFromGround
            ? RealizeGround(v)
            : RealizeEdge(v, graph_.edges[static_cast<size_t>(c)]);
    in_progress_.erase(v);
    return status;
  }

  /// Producer sharing-node id for a composite operand type.
  Result<int32_t> ProducerOf(EventTypeId type) {
    const CompositeCatalog::Info* info = catalog_.Find(type);
    if (info == nullptr) {
      return InternalError("no catalog entry for composite operand " +
                           registry_->NameOf(type));
    }
    std::string key = SharingNodeKey(info->pattern, info->window);
    auto it = graph_.index.find(key);
    if (it == graph_.index.end()) {
      return InternalError("no sharing node for composite operand " + key);
    }
    return it->second;
  }

  /// Builds the binding for operand `i` of `pattern` reading its canonical
  /// producer (raw stream for primitives, producer node for composites).
  /// Registers upstream inputs in `inputs` and returns the binding.
  Result<OperandBinding> DirectBinding(const FlatPattern& pattern, size_t i,
                                       const SlotLayout& layout,
                                       std::vector<int32_t>* inputs) {
    EventTypeId type = pattern.operands[i];
    OperandBinding binding;
    if (registry_->IsPrimitive(type)) {
      binding.types = {type};
      binding.channel = kRawChannel;
      binding.slot_map = {layout.base[i]};
      return binding;
    }
    if (const CompositeCatalog::SelectorInfo* selector =
            catalog_.FindSelector(type)) {
      binding.types = {selector->base};
      binding.channel = kRawChannel;
      binding.slot_map = {layout.base[i]};
      binding.predicate = selector->predicate;
      return binding;
    }
    MOTTO_ASSIGN_OR_RETURN(int32_t producer, ProducerOf(type));
    MOTTO_RETURN_IF_ERROR(Realize(producer));
    binding.types = catalog_.AcceptedTypes(type, *registry_);
    binding.channel = ChannelFor(exec_node_[static_cast<size_t>(producer)],
                                 inputs);
    binding.slot_map = OffsetSlotMap(catalog_.ArityOf(type, *registry_),
                                     layout.base[i]);
    return binding;
  }

  /// Adds an executable node, recording which sharing node / edge it
  /// materializes (the edge is `v`'s plan choice when that is an edge).
  int32_t Emit(JqpNode node, int32_t v, PlanNodeOrigin::Role role) {
    int32_t id = jqp_.AddNode(std::move(node));
    if (provenance_ != nullptr) {
      PlanNodeOrigin origin;
      origin.sharing_node = v;
      int32_t c = decision_.choice[static_cast<size_t>(v)];
      origin.edge = c >= 0 ? c : -1;
      origin.role = role;
      provenance_->nodes.push_back(origin);
    }
    return id;
  }

  /// Channel index for upstream executable node `exec` (adding it to the
  /// node's input list if new).
  Channel ChannelFor(int32_t exec, std::vector<int32_t>* inputs) {
    for (size_t k = 0; k < inputs->size(); ++k) {
      if ((*inputs)[k] == exec) return static_cast<Channel>(k + 1);
    }
    inputs->push_back(exec);
    return static_cast<Channel>(inputs->size());
  }

  /// Expands the pattern's NEG list into the spec: selector symbols become
  /// (base type, predicate) pairs the matcher evaluates.
  void FillNegated(const FlatPattern& pattern, PatternSpec* spec) {
    for (EventTypeId t : pattern.negated) {
      if (const CompositeCatalog::SelectorInfo* selector =
              catalog_.FindSelector(t)) {
        spec->negated.push_back(selector->base);
        spec->negated_predicates.push_back(selector->predicate);
      } else {
        spec->negated.push_back(t);
        spec->negated_predicates.emplace_back();
      }
    }
  }

  Status RealizeGround(int32_t v) {
    const SharingNode& node = graph_.nodes[static_cast<size_t>(v)];
    SlotLayout layout = LayoutOf(node.pattern, catalog_, *registry_);
    PatternSpec spec;
    spec.op = node.pattern.op;
    spec.window = node.pattern.op == PatternOp::kDisj && node.window <= 0
                      ? 1
                      : node.window;
    FillNegated(node.pattern, &spec);
    spec.output_type = node.output_type;
    std::vector<int32_t> inputs;
    for (size_t i = 0; i < node.pattern.operands.size(); ++i) {
      MOTTO_ASSIGN_OR_RETURN(OperandBinding binding,
                             DirectBinding(node.pattern, i, layout, &inputs));
      spec.operands.push_back(std::move(binding));
    }
    JqpNode jqp_node;
    jqp_node.spec = std::move(spec);
    jqp_node.inputs = std::move(inputs);
    jqp_node.label = node.key;
    exec_node_[static_cast<size_t>(v)] =
        Emit(std::move(jqp_node), v, PlanNodeOrigin::Role::kPattern);
    return Status::Ok();
  }

  Status RealizeEdge(int32_t v, const SharingEdge& edge) {
    MOTTO_RETURN_IF_ERROR(Realize(edge.source));
    const SharingNode& node = graph_.nodes[static_cast<size_t>(v)];
    const SharingNode& src = graph_.nodes[static_cast<size_t>(edge.source)];
    int32_t src_exec = exec_node_[static_cast<size_t>(edge.source)];

    switch (edge.recipe.kind) {
      case RewriteRecipe::Kind::kSpanFilter: {
        SpanFilterSpec filter;
        filter.max_span = node.window;
        filter.retype = node.output_type;
        JqpNode jqp_node;
        jqp_node.spec = filter;
        jqp_node.inputs = {src_exec};
        jqp_node.label = node.key + " (span)";
        exec_node_[static_cast<size_t>(v)] =
            Emit(std::move(jqp_node), v, PlanNodeOrigin::Role::kSpanFilter);
        return Status::Ok();
      }

      case RewriteRecipe::Kind::kCompositeOperand: {
        SlotLayout layout = LayoutOf(node.pattern, catalog_, *registry_);
        SlotLayout src_layout = LayoutOf(src.pattern, catalog_, *registry_);
        const std::vector<int32_t>& covered = edge.recipe.covered;
        MOTTO_CHECK_EQ(covered.size(), src.pattern.operands.size());
        PatternSpec spec;
        spec.op = node.pattern.op;
        spec.window = node.window;
        FillNegated(node.pattern, &spec);
        spec.output_type = node.output_type;
        std::vector<int32_t> inputs;
        // Composite operand first (CONJ) or in sequence position (SEQ).
        OperandBinding composite;
        composite.types = catalog_.AcceptedTypes(src.output_type, *registry_);
        composite.channel = ChannelFor(src_exec, &inputs);
        composite.slot_map.assign(static_cast<size_t>(src_layout.total), 0);
        for (size_t j = 0; j < covered.size(); ++j) {
          int32_t arity = catalog_.ArityOf(src.pattern.operands[j], *registry_);
          for (int32_t s = 0; s < arity; ++s) {
            composite.slot_map[static_cast<size_t>(src_layout.base[j] + s)] =
                layout.base[static_cast<size_t>(covered[j])] + s;
          }
        }
        std::unordered_map<int32_t, bool> covered_set;
        for (int32_t p : covered) covered_set[p] = true;
        // SEQ: composite must sit at its sequence position.
        bool composite_placed = false;
        for (size_t i = 0; i < node.pattern.operands.size(); ++i) {
          if (covered_set.count(static_cast<int32_t>(i)) > 0) {
            if (!composite_placed) {
              spec.operands.push_back(composite);
              composite_placed = true;
            }
            continue;
          }
          MOTTO_ASSIGN_OR_RETURN(
              OperandBinding binding,
              DirectBinding(node.pattern, i, layout, &inputs));
          spec.operands.push_back(std::move(binding));
        }
        JqpNode jqp_node;
        jqp_node.spec = std::move(spec);
        jqp_node.inputs = std::move(inputs);
        jqp_node.label = node.key + " (from " + src.key + ")";
        exec_node_[static_cast<size_t>(v)] =
            Emit(std::move(jqp_node), v, PlanNodeOrigin::Role::kPattern);
        return Status::Ok();
      }

      case RewriteRecipe::Kind::kMergeOrdered: {
        // CONJ(composite & uncovered...) with target slots, then the order
        // filter enforcing the target's SEQ order (paper Example 1).
        SlotLayout layout = LayoutOf(node.pattern, catalog_, *registry_);
        SlotLayout src_layout = LayoutOf(src.pattern, catalog_, *registry_);
        const std::vector<int32_t>& covered = edge.recipe.covered;
        PatternSpec merge;
        merge.op = PatternOp::kConj;
        merge.window = node.window;
        merge.output_type = registry_->RegisterComposite(
            node.key + "#merge(" + src.key + ")");
        std::vector<int32_t> inputs;
        OperandBinding composite;
        composite.types = catalog_.AcceptedTypes(src.output_type, *registry_);
        composite.channel = ChannelFor(src_exec, &inputs);
        composite.slot_map.assign(static_cast<size_t>(src_layout.total), 0);
        for (size_t j = 0; j < covered.size(); ++j) {
          int32_t arity = catalog_.ArityOf(src.pattern.operands[j], *registry_);
          for (int32_t s = 0; s < arity; ++s) {
            composite.slot_map[static_cast<size_t>(src_layout.base[j] + s)] =
                layout.base[static_cast<size_t>(covered[j])] + s;
          }
        }
        merge.operands.push_back(std::move(composite));
        std::unordered_map<int32_t, bool> covered_set;
        for (int32_t p : covered) covered_set[p] = true;
        for (size_t i = 0; i < node.pattern.operands.size(); ++i) {
          if (covered_set.count(static_cast<int32_t>(i)) > 0) continue;
          MOTTO_ASSIGN_OR_RETURN(
              OperandBinding binding,
              DirectBinding(node.pattern, i, layout, &inputs));
          merge.operands.push_back(std::move(binding));
        }
        JqpNode merge_node;
        merge_node.spec = std::move(merge);
        merge_node.inputs = std::move(inputs);
        merge_node.label = node.key + " (merge " + src.key + ")";
        int32_t merge_id =
            Emit(std::move(merge_node), v, PlanNodeOrigin::Role::kMerge);

        OrderFilterSpec filter;
        filter.required_order = node.pattern.operands;
        filter.relabel = true;
        filter.output_type = node.output_type;
        JqpNode filter_node;
        filter_node.spec = std::move(filter);
        filter_node.inputs = {merge_id};
        filter_node.label = node.key + " (order)";
        exec_node_[static_cast<size_t>(v)] =
            Emit(std::move(filter_node), v, PlanNodeOrigin::Role::kOrderFilter);
        return Status::Ok();
      }

      case RewriteRecipe::Kind::kOrderFilter: {
        OrderFilterSpec filter;
        filter.required_order = node.pattern.operands;
        filter.relabel = true;
        filter.output_type = node.output_type;
        JqpNode filter_node;
        filter_node.spec = std::move(filter);
        filter_node.inputs = {src_exec};
        filter_node.label = node.key + " (Filter_sc)";
        int32_t filter_id =
            Emit(std::move(filter_node), v, PlanNodeOrigin::Role::kOrderFilter);
        if (src.window > node.window) {
          SpanFilterSpec span;
          span.max_span = node.window;
          JqpNode span_node;
          span_node.spec = span;
          span_node.inputs = {filter_id};
          span_node.label = node.key + " (span)";
          filter_id =
              Emit(std::move(span_node), v, PlanNodeOrigin::Role::kSpanFilter);
        }
        exec_node_[static_cast<size_t>(v)] = filter_id;
        return Status::Ok();
      }

      case RewriteRecipe::Kind::kFromDisj: {
        SlotLayout layout = LayoutOf(node.pattern, catalog_, *registry_);
        PatternSpec spec;
        spec.op = node.pattern.op;
        spec.window = node.pattern.op == PatternOp::kDisj && node.window <= 0
                          ? 1
                          : node.window;
        FillNegated(node.pattern, &spec);
        spec.output_type = node.output_type;
        std::vector<int32_t> inputs;
        std::unordered_map<int32_t, bool> covered_set;
        for (int32_t p : edge.recipe.covered) covered_set[p] = true;
        Channel src_channel = ChannelFor(src_exec, &inputs);
        for (size_t i = 0; i < node.pattern.operands.size(); ++i) {
          if (covered_set.count(static_cast<int32_t>(i)) > 0) {
            EventTypeId type = node.pattern.operands[i];
            OperandBinding binding;
            binding.types = catalog_.AcceptedTypes(type, *registry_);
            binding.channel = src_channel;
            binding.slot_map = OffsetSlotMap(
                catalog_.ArityOf(type, *registry_), layout.base[i]);
            if (const CompositeCatalog::SelectorInfo* selector =
                    catalog_.FindSelector(type)) {
              binding.predicate = selector->predicate;
            }
            spec.operands.push_back(std::move(binding));
          } else {
            MOTTO_ASSIGN_OR_RETURN(
                OperandBinding binding,
                DirectBinding(node.pattern, i, layout, &inputs));
            spec.operands.push_back(std::move(binding));
          }
        }
        JqpNode jqp_node;
        jqp_node.spec = std::move(spec);
        jqp_node.inputs = std::move(inputs);
        jqp_node.label = node.key + " (from-disj " + src.key + ")";
        exec_node_[static_cast<size_t>(v)] =
            Emit(std::move(jqp_node), v, PlanNodeOrigin::Role::kPattern);
        return Status::Ok();
      }
    }
    return InternalError("unknown recipe kind");
  }

  const SharingGraph& graph_;
  const PlanDecision& decision_;
  const CompositeCatalog& catalog_;
  EventTypeRegistry* registry_;
  PlanProvenance* provenance_;
  Jqp jqp_;
  std::vector<int32_t> exec_node_;
  std::unordered_set<int32_t> in_progress_;
};

}  // namespace

std::string_view PlanNodeRoleName(PlanNodeOrigin::Role role) {
  switch (role) {
    case PlanNodeOrigin::Role::kPattern:
      return "pattern";
    case PlanNodeOrigin::Role::kMerge:
      return "merge";
    case PlanNodeOrigin::Role::kOrderFilter:
      return "order-filter";
    case PlanNodeOrigin::Role::kSpanFilter:
      return "span-filter";
  }
  return "?";
}

Result<Jqp> BuildJqp(const SharingGraph& graph, const PlanDecision& decision,
                     const CompositeCatalog& catalog,
                     EventTypeRegistry* registry,
                     PlanProvenance* provenance) {
  Builder builder(graph, decision, catalog, registry, provenance);
  return builder.Build();
}

std::vector<OrderPlan> AnnotateEvalOrders(
    Jqp* jqp, const StreamStats& stats,
    const std::vector<double>& node_multipliers) {
  std::vector<OrderPlan> plans(jqp->nodes.size());
  auto topo = jqp->TopoOrder();
  if (!topo.ok()) return plans;  // Invalid plans fail later, in Validate.
  CostModel model(stats);
  std::vector<double> output_rate(jqp->nodes.size(), 0.0);
  for (int32_t idx : *topo) {
    size_t ui = static_cast<size_t>(idx);
    JqpNode& node = jqp->nodes[ui];
    if (auto* pattern = std::get_if<PatternSpec>(&node.spec)) {
      std::vector<double> rates;
      rates.reserve(pattern->operands.size());
      for (const OperandBinding& binding : pattern->operands) {
        double rate = 0.0;
        if (binding.channel == kRawChannel) {
          for (EventTypeId type : binding.types) rate += model.RateOf(type);
        } else {
          size_t input = static_cast<size_t>(
              node.inputs[static_cast<size_t>(binding.channel) - 1]);
          rate = output_rate[input];
        }
        if (!binding.predicate.empty() && !binding.types.empty()) {
          rate *= model.PredicateSelectivity(binding.types.front(),
                                             binding.predicate);
        }
        rates.push_back(rate);
      }
      output_rate[ui] = model.OutputRate(pattern->op, rates, pattern->negated,
                                         pattern->window);
      if (pattern->op != PatternOp::kDisj && rates.size() >= 2 &&
          rates.size() <= static_cast<size_t>(kMaxLazyOperands)) {
        double multiplier = ui < node_multipliers.size() &&
                                    node_multipliers[ui] > 0.0
                                ? node_multipliers[ui]
                                : 1.0;
        plans[ui] = PlanEvalOrder(pattern->op, rates, pattern->window,
                                  model.constants(), multiplier);
        pattern->eval_order = plans[ui].order;
      }
    } else if (const auto* order = std::get_if<OrderFilterSpec>(&node.spec)) {
      output_rate[ui] =
          output_rate[static_cast<size_t>(node.inputs.at(0))] *
          CostModel::OrderFilterSelectivity(order->required_order.size());
    } else {  // Span filter: pass-through upper bound, as in PredictJqpCosts.
      output_rate[ui] = output_rate[static_cast<size_t>(node.inputs.at(0))];
    }
  }
  return plans;
}

}  // namespace motto
