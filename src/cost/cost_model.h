#ifndef MOTTO_COST_COST_MODEL_H_
#define MOTTO_COST_COST_MODEL_H_

#include <unordered_map>
#include <vector>

#include "ccl/pattern.h"
#include "ccl/predicate.h"
#include "event/stream.h"

namespace motto {

/// Cost/cardinality estimate for one operator (paper §VI).
struct OperatorEstimate {
  /// Estimated CPU work per second of stream time (abstract units; only
  /// relative magnitudes matter for plan selection).
  double cpu_per_second = 0.0;
  /// Estimated emissions per second of stream time.
  double output_rate = 0.0;
};

/// Analytical cost model over stream arrival statistics.
///
/// Rates are Poisson-style expectations: with per-type rates r_i and a
/// window of w seconds, N_i = r_i * w is the expected per-type population of
/// a window, SEQ emits prod(r_i) * w^(n-1) / (n-1)! matches/s, CONJ emits
/// n * prod(r_i) * w^(n-1), DISJ emits sum(r_i). CPU combines a per-arrival
/// term, a partial-match extension term (the dominant NFA cost) and a
/// per-emission term. Negation scales output by the Poisson survival
/// probability exp(-sum(r_neg) * w).
///
/// Composite operand types (outputs of other queries) get their rates via
/// SetRate, maintained by the optimizer in dependency order.
class CostModel {
 public:
  /// Relative work units, calibrated by least-squares regression of the
  /// model terms against measured per-node busy times of unshared plans on
  /// generated workloads (R^2 ~ 0.94; see EXPERIMENTS.md "cost model
  /// calibration"). Delivery overhead dominates in this engine; one unit is
  /// roughly 140ns on the reference machine.
  struct Constants {
    double per_event = 1.0;     // Dispatch + bookkeeping per delivered event.
    double per_partial = 0.68;  // Per partial match probed on extension.
    double per_emit = 0.12;     // Per constituent of an emitted composite.
    double per_filter = 0.5;    // Per event evaluated by a stateless filter.
  };

  explicit CostModel(StreamStats stats);
  CostModel(StreamStats stats, Constants constants);

  /// Arrival rate of `type` (raw statistics or a SetRate override).
  double RateOf(EventTypeId type) const;

  /// Registers the output rate of a composite type produced by some node.
  void SetRate(EventTypeId type, double rate);

  /// Estimates a flat pattern whose operand rates come from RateOf.
  OperatorEstimate EstimatePattern(const FlatPattern& pattern,
                                   Duration window) const;

  /// Estimates a pattern operator with explicit operand rates (used for
  /// rewritten operators whose inputs are other queries' outputs).
  OperatorEstimate EstimateOperator(PatternOp op,
                                    const std::vector<double>& operand_rates,
                                    const std::vector<EventTypeId>& negated,
                                    Duration window) const;

  /// Per-arrival and partial-extension work of an operator, excluding
  /// emission. Edge costs combine this with EmitCpu anchored at the target
  /// node's own output rate, so a rewritten plan and the from-scratch plan
  /// of the same query are charged identical emission work.
  double ProcessingCpu(PatternOp op, const std::vector<double>& operand_rates,
                       Duration window) const;

  /// Emission cost of `output_rate` composites with `arity` constituents.
  double EmitCpu(double output_rate, size_t arity) const;

  /// Output-rate estimate alone.
  double OutputRate(PatternOp op, const std::vector<double>& operand_rates,
                    const std::vector<EventTypeId>& negated,
                    Duration window) const;

  /// Cost of a stateless filter stage consuming `input_rate` events/s with
  /// the given pass-through fraction.
  OperatorEstimate EstimateFilter(double input_rate, double selectivity) const;

  /// Pass fraction of Filter_sc over a CONJ's output (1/n! orderings).
  static double OrderFilterSelectivity(size_t num_operands);

  /// Fraction of `base`-typed events satisfying `predicate`, estimated from
  /// the stream's payload samples; falls back to 0.5 per comparison when no
  /// samples are available. Clamped away from 0 so selector rates stay
  /// positive.
  double PredicateSelectivity(EventTypeId base,
                              const Predicate& predicate) const;

  const Constants& constants() const { return constants_; }

 private:
  double NegationSurvival(const std::vector<EventTypeId>& negated,
                          double window_seconds) const;

  StreamStats stats_;
  Constants constants_;
  std::unordered_map<EventTypeId, double> rate_overrides_;
};

}  // namespace motto

#endif  // MOTTO_COST_COST_MODEL_H_
