#ifndef MOTTO_COST_ORDER_PLANNER_H_
#define MOTTO_COST_ORDER_PLANNER_H_

#include <cstdint>
#include <vector>

#include "ccl/pattern.h"
#include "cost/cost_model.h"
#include "event/stream.h"

namespace motto {

/// Outcome of evaluation-order planning for one SEQ/CONJ operator
/// (DESIGN.md §13). `order` is the selectivity order (rarest effective rate
/// first, position -> operand index) destined for PatternSpec::eval_order;
/// it is empty when reordering does not apply (DISJ, fewer than two
/// operands). Partial counts are expected live partial matches per window
/// under each mode; costs are modeled CPU per second of stream time in the
/// same units as CostModel::ProcessingCpu, so they are comparable with the
/// plan-level cost estimates.
struct OrderPlan {
  std::vector<int32_t> order;
  double arrival_partials = 0.0;
  double lazy_partials = 0.0;
  double arrival_cost = 0.0;
  double lazy_cost = 0.0;
  /// True when the modeled lazy cost (extension savings minus buffering
  /// overhead) beats arrival order. The executors honor the order either
  /// way; this drives reporting and the default mode recommendation.
  bool lazy_beneficial = false;

  /// Predicted partial-count reduction factor (arrival / lazy, >= 0).
  double Reduction() const {
    return lazy_partials > 1e-12 ? arrival_partials / lazy_partials
           : arrival_partials > 0.0 ? arrival_partials / 1e-12
                                    : 1.0;
  }
};

/// Plans the operand evaluation order for one operator from effective
/// operand rates (arrival rate x predicate selectivity, events/s).
///
/// Order rule: ascending effective rate, ties broken by operand index so
/// planning is deterministic. The rarest operand becomes the lazy anchor —
/// only its arrivals create runs; the rest are buffered and joined.
///
/// Cost accounting (per second of stream time, CostModel units):
///   arrival: per_event * sum(r) + per_partial * extension work of the
///            eager NFA (SEQ prefix chain in index order; CONJ 2^n lattice,
///            modeled as each arrival probing the product of the other
///            operand populations).
///   lazy:    per_event * sum(r) dispatch, plus per_event * (sum(r) -
///            r_anchor) buffer appends, plus per_partial * chain extension
///            work in the planned order (arrivals of the operand at
///            position k scan the partials whose matched prefix has length
///            k; SEQ prefixes additionally carry the 1/(k-1)! ordering
///            thinning).
///
/// `cost_multiplier` is a measured/predicted calibration ratio for this
/// node's plan family (EXPERIMENTS.md "cost model calibration"); it scales
/// only the per_partial extension terms — the model's uncertain part — on
/// both sides. A family the model overestimates (multiplier < 1, e.g. DST
/// at 0.73x) therefore shrinks the extension savings relative to the fixed
/// buffering overhead and makes the planner correctly more reluctant to
/// call lazy beneficial.
OrderPlan PlanEvalOrder(PatternOp op, const std::vector<double>& operand_rates,
                        Duration window,
                        const CostModel::Constants& constants,
                        double cost_multiplier = 1.0);

}  // namespace motto

#endif  // MOTTO_COST_ORDER_PLANNER_H_
