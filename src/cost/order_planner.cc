#include "cost/order_planner.h"

#include <algorithm>
#include <cmath>

namespace motto {

namespace {

/// Expected live partials of a prefix chain over `populations` visited in
/// `order`: sum over prefix lengths k = 1..n-1 of the expected number of
/// runs holding exactly the first k operands of the order. SEQ prefixes are
/// thinned by 1/(k-1)! — only one relative ordering of the k constituents
/// survives the sequence guard (the anchor's position is fixed by
/// conditioning on its arrival).
double ChainPartials(const std::vector<double>& populations,
                     const std::vector<int32_t>& order, bool ordered) {
  double total = 0.0;
  double prefix = 1.0;
  double factorial = 1.0;
  for (size_t k = 1; k < order.size(); ++k) {
    prefix *= populations[static_cast<size_t>(order[k - 1])];
    if (ordered && k >= 2) factorial *= static_cast<double>(k - 1);
    total += prefix / factorial;
  }
  return total;
}

/// Chain extension CPU: arrivals of the operand at position k scan the
/// partials at prefix length k.
double ChainExtensionCpu(const std::vector<double>& rates,
                         const std::vector<double>& populations,
                         const std::vector<int32_t>& order, bool ordered) {
  double cpu = 0.0;
  double prefix = 1.0;
  double factorial = 1.0;
  for (size_t k = 1; k < order.size(); ++k) {
    prefix *= populations[static_cast<size_t>(order[k - 1])];
    if (ordered && k >= 2) factorial *= static_cast<double>(k - 1);
    cpu += rates[static_cast<size_t>(order[k])] * (prefix / factorial);
  }
  return cpu;
}

}  // namespace

OrderPlan PlanEvalOrder(PatternOp op, const std::vector<double>& operand_rates,
                        Duration window,
                        const CostModel::Constants& constants,
                        double cost_multiplier) {
  OrderPlan plan;
  size_t n = operand_rates.size();
  double sum_rate = 0.0;
  for (double r : operand_rates) sum_rate += r;
  plan.arrival_cost = constants.per_event * sum_rate;
  plan.lazy_cost = plan.arrival_cost;
  if (op == PatternOp::kDisj || n < 2) return plan;

  plan.order.resize(n);
  for (size_t i = 0; i < n; ++i) plan.order[i] = static_cast<int32_t>(i);
  std::stable_sort(plan.order.begin(), plan.order.end(),
                   [&](int32_t a, int32_t b) {
                     double ra = operand_rates[static_cast<size_t>(a)];
                     double rb = operand_rates[static_cast<size_t>(b)];
                     if (ra != rb) return ra < rb;
                     return a < b;
                   });

  double w = static_cast<double>(window) / kMicrosPerSecond;
  std::vector<double> populations;
  populations.reserve(n);
  for (double r : operand_rates) populations.push_back(r * w);

  std::vector<int32_t> identity(n);
  for (size_t i = 0; i < n; ++i) identity[i] = static_cast<int32_t>(i);

  bool ordered = op == PatternOp::kSeq;
  if (ordered) {
    // Eager SEQ already runs a chain, in operand (= arrival-plausible)
    // order; lazy re-runs the same chain in the planned order.
    plan.arrival_partials = ChainPartials(populations, identity, true);
    plan.arrival_cost +=
        cost_multiplier * constants.per_partial *
        ChainExtensionCpu(operand_rates, populations, identity, true);
  } else {
    // Eager CONJ materializes the subset lattice: every non-empty proper
    // subset of operands is a live partial. prod(1 + N_i) counts all
    // subsets, minus the empty set and the completed full set.
    double all = 1.0;
    double full = 1.0;
    for (double pop : populations) {
      all *= 1.0 + pop;
      full *= pop;
    }
    plan.arrival_partials = all - 1.0 - full;
    double extension = 0.0;
    for (size_t k = 0; k < n; ++k) {
      double scan = 1.0;
      for (size_t j = 0; j < n; ++j) {
        if (j != k) scan *= populations[j];
      }
      extension += operand_rates[k] * scan;
    }
    plan.arrival_cost += cost_multiplier * constants.per_partial * extension;
  }

  plan.lazy_partials = ChainPartials(populations, plan.order, ordered);
  plan.lazy_cost +=
      constants.per_event * (sum_rate -
                             operand_rates[static_cast<size_t>(plan.order[0])]);
  plan.lazy_cost +=
      cost_multiplier * constants.per_partial *
      ChainExtensionCpu(operand_rates, populations, plan.order, ordered);
  plan.lazy_beneficial = plan.lazy_cost < plan.arrival_cost;
  return plan;
}

}  // namespace motto
