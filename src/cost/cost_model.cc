#include "cost/cost_model.h"

#include <cmath>

#include "common/check.h"

namespace motto {

CostModel::CostModel(StreamStats stats)
    : CostModel(std::move(stats), Constants{}) {}

CostModel::CostModel(StreamStats stats, Constants constants)
    : stats_(std::move(stats)), constants_(constants) {}

double CostModel::RateOf(EventTypeId type) const {
  auto it = rate_overrides_.find(type);
  if (it != rate_overrides_.end()) return it->second;
  return stats_.RateOf(type);
}

void CostModel::SetRate(EventTypeId type, double rate) {
  rate_overrides_[type] = rate;
}

double CostModel::OrderFilterSelectivity(size_t num_operands) {
  double factorial = 1.0;
  for (size_t i = 2; i <= num_operands; ++i) {
    factorial *= static_cast<double>(i);
  }
  return 1.0 / factorial;
}

double CostModel::PredicateSelectivity(EventTypeId base,
                                       const Predicate& predicate) const {
  if (predicate.empty()) return 1.0;
  auto it = stats_.payload_samples.find(base);
  if (it == stats_.payload_samples.end() || it->second.empty()) {
    double selectivity = 1.0;
    for (size_t c = 0; c < predicate.comparisons().size(); ++c) {
      selectivity *= 0.5;
    }
    return selectivity;
  }
  size_t hits = 0;
  for (const Payload& payload : it->second) {
    if (predicate.Matches(payload)) ++hits;
  }
  double selectivity =
      static_cast<double>(hits) / static_cast<double>(it->second.size());
  return std::max(selectivity, 0.01);
}

double CostModel::NegationSurvival(const std::vector<EventTypeId>& negated,
                                   double window_seconds) const {
  double neg_rate = 0.0;
  for (EventTypeId t : negated) neg_rate += RateOf(t);
  return std::exp(-neg_rate * window_seconds);
}

OperatorEstimate CostModel::EstimatePattern(const FlatPattern& pattern,
                                            Duration window) const {
  std::vector<double> rates;
  rates.reserve(pattern.operands.size());
  for (EventTypeId t : pattern.operands) rates.push_back(RateOf(t));
  return EstimateOperator(pattern.op, rates, pattern.negated, window);
}

double CostModel::ProcessingCpu(PatternOp op,
                                const std::vector<double>& operand_rates,
                                Duration window) const {
  MOTTO_CHECK(!operand_rates.empty());
  size_t n = operand_rates.size();
  double w = static_cast<double>(window) / kMicrosPerSecond;
  double sum_rate = 0.0;
  for (double r : operand_rates) sum_rate += r;
  double cpu = constants_.per_event * sum_rate;
  if (op == PatternOp::kDisj) return cpu;

  // N_i = expected per-operand population of one window.
  std::vector<double> populations;
  populations.reserve(n);
  for (double r : operand_rates) populations.push_back(r * w);

  if (op == PatternOp::kSeq) {
    // Extension work: arrivals of operand k scan partials at prefix k-1;
    // E[partials at prefix k] = prod_{j<=k} N_j / (k-1)!.
    double prefix = populations[0];  // Partials at prefix length 1.
    double factorial = 1.0;
    for (size_t k = 1; k < n; ++k) {
      cpu += constants_.per_partial * operand_rates[k] * (prefix / factorial);
      factorial *= static_cast<double>(k);
      prefix *= populations[k];
    }
  } else {  // CONJ
    // Arrivals of operand k extend partials containing the other operands:
    // roughly prod_{j != k} N_j live combinations to probe.
    for (size_t k = 0; k < n; ++k) {
      double scan = 1.0;
      for (size_t j = 0; j < n; ++j) {
        if (j != k) scan *= populations[j];
      }
      cpu += constants_.per_partial * operand_rates[k] * scan;
    }
  }
  return cpu;
}

double CostModel::EmitCpu(double output_rate, size_t arity) const {
  return constants_.per_emit * output_rate * static_cast<double>(arity);
}

double CostModel::OutputRate(PatternOp op,
                             const std::vector<double>& operand_rates,
                             const std::vector<EventTypeId>& negated,
                             Duration window) const {
  MOTTO_CHECK(!operand_rates.empty());
  size_t n = operand_rates.size();
  double w = static_cast<double>(window) / kMicrosPerSecond;
  double output;
  if (op == PatternOp::kDisj) {
    output = 0.0;
    for (double r : operand_rates) output += r;
    return output;
  }
  if (op == PatternOp::kSeq) {
    // Matches closed by the last operand: prod(r_i) * w^(n-1) / (n-1)!.
    output = operand_rates[0];
    double factorial = 1.0;
    for (size_t i = 1; i < n; ++i) {
      output *= operand_rates[i] * w;
      factorial *= static_cast<double>(i);
    }
    output /= factorial;
  } else {
    // Any-order matches, closed by any operand: n * prod(r_i) * w^(n-1).
    output = static_cast<double>(n);
    for (size_t i = 0; i < n; ++i) output *= operand_rates[i];
    for (size_t i = 1; i < n; ++i) output *= w;
  }
  return output * NegationSurvival(negated, w);
}

OperatorEstimate CostModel::EstimateOperator(
    PatternOp op, const std::vector<double>& operand_rates,
    const std::vector<EventTypeId>& negated, Duration window) const {
  OperatorEstimate est;
  est.output_rate = OutputRate(op, operand_rates, negated, window);
  size_t arity = op == PatternOp::kDisj ? 1 : operand_rates.size();
  est.cpu_per_second = ProcessingCpu(op, operand_rates, window) +
                       EmitCpu(est.output_rate, arity);
  return est;
}

OperatorEstimate CostModel::EstimateFilter(double input_rate,
                                           double selectivity) const {
  OperatorEstimate est;
  est.cpu_per_second = constants_.per_filter * input_rate;
  est.output_rate = input_rate * selectivity;
  return est;
}

}  // namespace motto
