#include "workload/data_gen.h"

#include <cmath>

#include "common/check.h"

namespace motto {

std::string_view ScenarioName(Scenario scenario) {
  switch (scenario) {
    case Scenario::kStockMarket:
      return "stock-market";
    case Scenario::kDataCenter:
      return "data-center";
  }
  return "?";
}

const std::vector<std::string>& ScenarioTypeNames(Scenario scenario) {
  static const std::vector<std::string>& stock = *new std::vector<std::string>{
      "AAPL", "MSFT", "IBM", "INTC", "FB",   "GOOG", "AMZN",
      "ORCL", "CSCO", "NVDA", "TSLA", "NFLX", "SAP"};
  static const std::vector<std::string>& datacenter =
      *new std::vector<std::string>{
          "net_pkt_small",   "net_pkt_large",    "net_start_tx",
          "net_end_tx",      "net_delivery_ok",  "net_ack",
          "net_retransmit",  "net_timeout",      "net_congestion",
          "net_route_change","net_dns_slow",     "net_conn_reset",
          "vm_cpu_high",     "vm_cpu_low",       "vm_mem_high",
          "vm_mem_low",      "vm_disk_full",     "vm_disk_slow",
          "vm_boot",         "vm_shutdown",      "vm_migrate",
          "vm_snapshot",     "vm_log_error",     "vm_log_warn",
          "svc_http_500",    "svc_http_503",     "svc_latency_high",
          "svc_queue_full",  "svc_restart",      "svc_deploy",
          "pwr_spike",       "pwr_brownout",     "cool_temp_high",
          "cool_fan_fail",   "sec_login_fail",   "sec_port_scan"};
  return scenario == Scenario::kStockMarket ? stock : datacenter;
}

EventStream GenerateStream(const StreamOptions& options,
                           EventTypeRegistry* registry) {
  MOTTO_CHECK_GT(options.num_events, 0);
  const std::vector<std::string>& names = ScenarioTypeNames(options.scenario);
  std::vector<EventTypeId> types;
  types.reserve(names.size());
  for (const std::string& name : names) {
    types.push_back(registry->RegisterPrimitive(name));
  }

  double rate = options.events_per_second > 0
                    ? options.events_per_second
                    : (options.scenario == Scenario::kStockMarket ? 2.0 : 4.0);
  double zipf = options.zipf_exponent >= 0
                    ? options.zipf_exponent
                    : (options.scenario == Scenario::kStockMarket ? 0.5 : 0.3);

  Rng rng(options.seed);
  EventStream stream;
  stream.reserve(static_cast<size_t>(options.num_events));
  Timestamp ts = 0;
  double mean_gap_us =
      static_cast<double>(kMicrosPerSecond) / rate;
  // Payload state: per-type random-walk value (price / bytes).
  std::vector<double> walk(types.size(), 100.0);
  for (int64_t i = 0; i < options.num_events; ++i) {
    // Strictly increasing timestamps keep SEQ semantics unambiguous.
    Timestamp gap = static_cast<Timestamp>(rng.Exponential(mean_gap_us)) + 1;
    ts += gap;
    int32_t rank = rng.Zipf(static_cast<int32_t>(types.size()), zipf);
    size_t type_idx = static_cast<size_t>(rank);
    walk[type_idx] += rng.NextDouble() - 0.5;
    Payload payload;
    payload.value = walk[type_idx];
    payload.aux = rng.Uniform(1, 100'000);  // Volume / packet bytes.
    stream.push_back(Event::Primitive(types[type_idx], ts, payload));
  }
  return stream;
}

}  // namespace motto
