#ifndef MOTTO_WORKLOAD_HARNESS_H_
#define MOTTO_WORKLOAD_HARNESS_H_

#include <vector>

#include "common/result.h"
#include "engine/executor.h"
#include "motto/optimizer.h"
#include "obs/report.h"

namespace motto {

/// Measurement of one optimizer mode over one workload + stream.
struct ModeRun {
  OptimizerMode mode = OptimizerMode::kNa;
  /// Raw input events per second of wall time.
  double throughput_eps = 0.0;
  /// Throughput relative to the NA baseline of the same comparison.
  double normalized = 1.0;
  uint64_t total_matches = 0;
  double optimize_seconds = 0.0;  // Rewriter + planner wall time.
  double planned_cost = 0.0;
  double default_cost = 0.0;
  bool exact = false;
  size_t jqp_nodes = 0;
  /// Per-node predicted-vs-measured report (DESIGN.md §9). Nodes are only
  /// filled when ComparisonOptions::collect_reports is set (it needs an
  /// extra timed replay per mode); warnings raised while measuring — e.g. a
  /// zero-throughput NA baseline — are appended regardless.
  obs::RunReport report;
};

struct ComparisonOptions {
  std::vector<OptimizerMode> modes = {OptimizerMode::kNa, OptimizerMode::kMst,
                                      OptimizerMode::kLcse,
                                      OptimizerMode::kMotto};
  PlannerOptions planner;
  /// Cross-check that every mode produces exactly the NA match multiset
  /// per query (slower; use on validation runs).
  bool verify_matches = false;
  /// Discard one warmup replay before measuring (cold caches/allocator
  /// otherwise penalize whichever mode runs first).
  bool warmup = false;
  /// Measured replays per mode; the best throughput is reported.
  int measure_runs = 1;
  /// Attach a full RunReport (predicted-vs-measured per node) to every
  /// ModeRun. Costs one extra timed replay per mode, so keep it off on
  /// pure-throughput comparisons.
  bool collect_reports = false;
  /// Execution engine for the measured replays: shards > 1 selects the
  /// sharded data-parallel executor (DESIGN.md §12); otherwise threads > 1
  /// selects the pipelined executor with batch_size/pipe_depth; the default
  /// is the single-threaded Executor.
  int shards = 1;
  int threads = 1;
  size_t batch_size = 512;
  size_t pipe_depth = 4;
  /// Operand evaluation mode for every measured replay (and the optional
  /// verification replays): kSelectivity runs each pattern node in its
  /// planner-chosen rarest-first order (DESIGN.md §13).
  EvalOrderMode eval_order = EvalOrderMode::kArrival;
  /// Per-family cost calibration forwarded to every mode's optimizer
  /// (OptimizerOptions::calibration).
  std::vector<std::pair<std::string, double>> calibration;
};

/// Optimizes and replays `queries` over `stream` once per mode, reporting
/// throughput normalized to NA (the paper's Fig 13 measurement).
/// The NA mode is always run (prepended if absent) to anchor normalization.
Result<std::vector<ModeRun>> CompareModes(const std::vector<Query>& queries,
                                          const EventStream& stream,
                                          EventTypeRegistry* registry,
                                          const ComparisonOptions& options);

/// One point of the multi-core scaling study (Fig 14b).
struct ScalingPoint {
  int threads = 1;
  /// Speedup predicted by LPT-partitioning measured per-node busy times
  /// onto `threads` workers (this container has one vCPU; see DESIGN.md §4).
  double modeled_speedup = 1.0;
  double modeled_throughput_eps = 0.0;
  /// Wall-clock throughput of the real multi-threaded executor (meaningful
  /// only on multi-core hosts; reported for completeness).
  double wallclock_throughput_eps = 0.0;
};

/// Runs `jqp` single-threaded with per-node timing, then models the
/// makespan of the measured node work under 1..max_threads workers;
/// optionally also runs the real ParallelExecutor per thread count.
Result<std::vector<ScalingPoint>> MeasureCoreScaling(const Jqp& jqp,
                                                     const EventStream& stream,
                                                     int max_threads,
                                                     bool run_wallclock);

}  // namespace motto

#endif  // MOTTO_WORKLOAD_HARNESS_H_
