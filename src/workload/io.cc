#include "workload/io.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "ccl/parser.h"
#include "common/parse.h"

namespace motto {

namespace {

std::string Strip(const std::string& s) {
  size_t begin = 0, end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return NotFoundError("cannot open " + path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

Status WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) return InternalError("cannot write " + path);
  out << content;
  return out ? Status::Ok() : InternalError("short write to " + path);
}

/// True if the line's leading identifier is followed by ':' outside any
/// bracket — a query name prefix (the window clause also contains ':', but
/// only inside "[...]").
bool SplitNamePrefix(const std::string& line, std::string* name,
                     std::string* rest) {
  size_t i = 0;
  while (i < line.size() &&
         (std::isalnum(static_cast<unsigned char>(line[i])) ||
          line[i] == '_')) {
    ++i;
  }
  if (i == 0 || i >= line.size()) return false;
  size_t j = i;
  while (j < line.size() &&
         std::isspace(static_cast<unsigned char>(line[j]))) {
    ++j;
  }
  if (j >= line.size() || line[j] != ':') return false;
  *name = line.substr(0, i);
  *rest = Strip(line.substr(j + 1));
  return true;
}

}  // namespace

Result<std::vector<Query>> ParseWorkloadText(const std::string& text,
                                             EventTypeRegistry* registry) {
  std::vector<Query> queries;
  std::istringstream lines(text);
  std::string line;
  int line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = Strip(line);
    if (line.empty()) continue;
    std::string name = "q" + std::to_string(queries.size() + 1);
    std::string body = line;
    std::string explicit_name, rest;
    if (SplitNamePrefix(line, &explicit_name, &rest) &&
        explicit_name != "SELECT" && explicit_name != "select") {
      name = explicit_name;
      body = rest;
    }
    auto query = ccl::ParseQuery(body, registry, name);
    if (!query.ok()) {
      return InvalidArgumentError("line " + std::to_string(line_no) + ": " +
                                  query.status().ToString());
    }
    queries.push_back(*std::move(query));
  }
  if (queries.empty()) {
    return InvalidArgumentError("workload file contains no queries");
  }
  return queries;
}

Result<std::vector<Query>> LoadWorkloadFile(const std::string& path,
                                            EventTypeRegistry* registry) {
  MOTTO_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  return ParseWorkloadText(text, registry);
}

std::string WorkloadToText(const std::vector<Query>& queries,
                           const EventTypeRegistry& registry) {
  std::string out;
  for (const Query& query : queries) {
    out += query.name + ": SELECT * FROM stream MATCHING [" +
           std::to_string(query.window) + " us : " +
           query.pattern.ToString(registry) + "]\n";
  }
  return out;
}

Status SaveWorkloadFile(const std::string& path,
                        const std::vector<Query>& queries,
                        const EventTypeRegistry& registry) {
  return WriteFile(path, WorkloadToText(queries, registry));
}

Result<EventStream> ParseStreamCsv(const std::string& text,
                                   EventTypeRegistry* registry) {
  EventStream stream;
  std::istringstream lines(text);
  std::string line;
  int line_no = 0;
  bool header_seen = false;
  while (std::getline(lines, line)) {
    ++line_no;
    line = Strip(line);
    if (line.empty()) continue;
    if (!header_seen) {
      header_seen = true;
      if (line.rfind("type,", 0) == 0) continue;  // Optional header.
    }
    std::istringstream fields(line);
    std::string type_name, ts_str, value_str, aux_str;
    if (!std::getline(fields, type_name, ',') ||
        !std::getline(fields, ts_str, ',')) {
      return InvalidArgumentError("stream csv line " +
                                  std::to_string(line_no) + ": bad format");
    }
    std::getline(fields, value_str, ',');
    std::getline(fields, aux_str, ',');
    // Checked parses: a malformed or out-of-range field is a data error the
    // caller must see, not a silent 0.0 / saturated value in the stream.
    auto field_error = [&](const char* field, const Status& status) {
      return InvalidArgumentError("stream csv line " +
                                  std::to_string(line_no) + ": bad " + field +
                                  ": " + status.message());
    };
    auto ts_parsed = ParseInt64(ts_str);
    if (!ts_parsed.ok()) {
      return field_error("timestamp", ts_parsed.status());
    }
    Timestamp ts = *ts_parsed;
    Payload payload;
    if (!value_str.empty()) {
      auto value = ParseDouble(value_str);
      if (!value.ok()) return field_error("value", value.status());
      payload.value = *value;
    }
    if (!aux_str.empty()) {
      auto aux = ParseInt64(aux_str);
      if (!aux.ok()) return field_error("aux", aux.status());
      payload.aux = *aux;
    }
    stream.push_back(Event::Primitive(
        registry->RegisterPrimitive(Strip(type_name)), ts, payload));
  }
  MOTTO_RETURN_IF_ERROR(ValidateStream(stream));
  return stream;
}

Result<EventStream> LoadStreamCsv(const std::string& path,
                                  EventTypeRegistry* registry) {
  MOTTO_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  return ParseStreamCsv(text, registry);
}

std::string StreamToCsv(const EventStream& stream,
                        const EventTypeRegistry& registry) {
  std::string out = "type,ts_us,value,aux\n";
  char line[160];
  for (const Event& e : stream) {
    std::snprintf(line, sizeof(line), "%s,%lld,%.10g,%lld\n",
                  registry.NameOf(e.type()).c_str(),
                  static_cast<long long>(e.begin()), e.payload().value,
                  static_cast<long long>(e.payload().aux));
    out += line;
  }
  return out;
}

Status SaveStreamCsv(const std::string& path, const EventStream& stream,
                     const EventTypeRegistry& registry) {
  return WriteFile(path, StreamToCsv(stream, registry));
}

}  // namespace motto
