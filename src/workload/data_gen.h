#ifndef MOTTO_WORKLOAD_DATA_GEN_H_
#define MOTTO_WORKLOAD_DATA_GEN_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "event/stream.h"

namespace motto {

/// The paper's two application scenarios (§VII-A).
enum class Scenario {
  kStockMarket,  // 13 event types (stock symbols), longer operand lists.
  kDataCenter,   // 36 event types (network/VM events), shorter lists.
};

std::string_view ScenarioName(Scenario scenario);

/// Primitive event type names of a scenario (13 stock symbols / 36
/// data-center event kinds).
const std::vector<std::string>& ScenarioTypeNames(Scenario scenario);

/// Synthetic substitutes for the paper's datasets (see DESIGN.md §4):
/// the real stock trade set [16] (2M events, 13 symbols) and the SAP HANA
/// DCI sample (4M events, 36 types) are not redistributable, so we generate
/// streams with the same shape: Zipf-skewed type frequencies, exponential
/// interarrivals calibrated so a 10-second window holds O(1) events of each
/// hot type (the selective regime pattern queries target), strictly
/// increasing timestamps, and a payload (price walk / packet size).
struct StreamOptions {
  Scenario scenario = Scenario::kStockMarket;
  int64_t num_events = 2'000'000;
  uint64_t seed = 42;
  /// Total logical arrival rate (events per second of stream time).
  /// Defaults: 1.2/s stock, 2.4/s data center.
  double events_per_second = 0.0;
  /// Zipf exponent of the type frequency distribution.
  /// Defaults: 0.8 stock (hot symbols), 0.4 data center (flatter).
  double zipf_exponent = -1.0;
};

/// Generates the stream and registers the scenario's types in `registry`.
EventStream GenerateStream(const StreamOptions& options,
                           EventTypeRegistry* registry);

}  // namespace motto

#endif  // MOTTO_WORKLOAD_DATA_GEN_H_
