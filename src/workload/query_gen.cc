#include "workload/query_gen.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"
#include "common/rng.h"

namespace motto {

namespace {

/// Stateful generator for one workload.
class Generator {
 public:
  Generator(const WorkloadOptions& options, EventTypeRegistry* registry)
      : options_(options), registry_(registry), rng_(options.seed) {
    for (const std::string& name : ScenarioTypeNames(options.scenario)) {
      universe_.push_back(registry_->RegisterPrimitive(name));
    }
    if (options_.scenario == Scenario::kStockMarket) {
      min_operands_ = options_.min_operands > 0 ? options_.min_operands : 4;
      max_operands_ = options_.max_operands > 0 ? options_.max_operands : 7;
    } else {
      min_operands_ = options_.min_operands > 0 ? options_.min_operands : 2;
      max_operands_ = options_.max_operands > 0 ? options_.max_operands : 4;
    }
    max_operands_ =
        std::min<int>(max_operands_, static_cast<int>(universe_.size()));
    min_operands_ = std::min(min_operands_, max_operands_);
    // Motif pool: short event sequences many queries embed, modelling the
    // paper's motivation (Fig 1: analysts watching overlapping patterns).
    // Motifs create the cross-pair sharing a multi-query optimizer exploits.
    int num_motifs = std::max<int>(2, static_cast<int>(universe_.size()) / 6);
    for (int m = 0; m < num_motifs; ++m) {
      motifs_.push_back(SampleTypes(rng_.Bernoulli(0.5) ? 2 : 3));
    }
  }

  Result<GeneratedWorkload> Generate() {
    GeneratedWorkload out;
    int pairs = (options_.num_queries + 1) / 2;
    int basic_pairs = static_cast<int>(options_.basic_ratio * pairs + 0.5);
    int basic_cycle = 0;
    int complex_cycle = 0;
    for (int p = 0; p < pairs; ++p) {
      int type = options_.only_type > 0
                     ? options_.only_type
                     : (p < basic_pairs ? 1 + (basic_cycle++ % 4)
                                        : 5 + (complex_cycle++ % 3));
      bool added = false;
      for (int attempt = 0; attempt < 64 && !added; ++attempt) {
        added = TryAddPair(type, &out);
      }
      if (!added) {
        return InternalError(
            "workload generator could not produce a fresh pair of type " +
            std::to_string(type) + "; universe too small");
      }
    }
    while (static_cast<int>(out.queries.size()) > options_.num_queries) {
      out.queries.pop_back();
      out.sharing_type.pop_back();
    }
    return out;
  }

 private:
  /// Samples `n` distinct types.
  std::vector<EventTypeId> SampleTypes(int n) {
    std::vector<EventTypeId> pool = universe_;
    rng_.Shuffle(pool);
    pool.resize(static_cast<size_t>(n));
    return pool;
  }

  /// Samples `n` distinct types from the rare half of the universe
  /// (ScenarioTypeNames orders types by Zipf rank, hottest first). The
  /// complex group uses these: alert-style queries watch rare events, and
  /// all-combination semantics over hot types would flood the comparison
  /// with matches every plan must emit anyway.
  std::vector<EventTypeId> SampleRareTypes(int n) {
    std::vector<EventTypeId> pool(universe_.begin() +
                                      static_cast<int64_t>(universe_.size() / 2),
                                  universe_.end());
    if (static_cast<int>(pool.size()) < n) pool = universe_;
    rng_.Shuffle(pool);
    pool.resize(static_cast<size_t>(n));
    return pool;
  }

  /// Samples `n` distinct types, usually embedding one shared motif so
  /// queries across pairs overlap (multi-query sharing fodder).
  std::vector<EventTypeId> SampleOperandList(int n) {
    if (motifs_.empty() || n < 4 || !rng_.Bernoulli(0.9)) {
      return SampleTypes(n);
    }
    const std::vector<EventTypeId>& motif = motifs_[static_cast<size_t>(
        rng_.Uniform(0, static_cast<int64_t>(motifs_.size()) - 1))];
    // Fill the rest with distinct types outside the motif.
    std::vector<EventTypeId> rest;
    for (EventTypeId t : universe_) {
      if (std::find(motif.begin(), motif.end(), t) == motif.end()) {
        rest.push_back(t);
      }
    }
    rng_.Shuffle(rest);
    int extra = n - static_cast<int>(motif.size());
    if (extra < 0 || extra > static_cast<int>(rest.size())) {
      return SampleTypes(n);
    }
    rest.resize(static_cast<size_t>(extra));
    // Insert the motif contiguously at a random position.
    size_t pos = static_cast<size_t>(
        rng_.Uniform(0, static_cast<int64_t>(rest.size())));
    std::vector<EventTypeId> out(rest.begin(),
                                 rest.begin() + static_cast<int64_t>(pos));
    out.insert(out.end(), motif.begin(), motif.end());
    out.insert(out.end(), rest.begin() + static_cast<int64_t>(pos),
               rest.end());
    return out;
  }

  int Span(int lo, int hi) {  // Inclusive uniform.
    return static_cast<int>(rng_.Uniform(lo, hi));
  }

  static PatternExpr Flat(PatternOp op, const std::vector<EventTypeId>& types) {
    std::vector<PatternExpr> children;
    children.reserve(types.size());
    for (EventTypeId t : types) children.push_back(PatternExpr::Leaf(t));
    return PatternExpr::Operator(op, std::move(children));
  }

  bool Add(GeneratedWorkload* out, int type, PatternExpr pattern,
           Duration window) {
    std::string key =
        Canonicalize(pattern).CanonicalKey() + "@" + std::to_string(window);
    if (!seen_.insert(key).second) return false;
    Query query;
    query.name = "q" + std::to_string(out->queries.size());
    query.pattern = std::move(pattern);
    query.window = window;
    out->queries.push_back(std::move(query));
    out->sharing_type.push_back(type);
    return true;
  }

  bool AddPair(GeneratedWorkload* out, int type, PatternExpr a, Duration wa,
               PatternExpr b, Duration wb) {
    size_t rollback = out->queries.size();
    if (Add(out, type, std::move(a), wa) && Add(out, type, std::move(b), wb)) {
      return true;
    }
    while (out->queries.size() > rollback) {
      out->queries.pop_back();
      out->sharing_type.pop_back();
    }
    return false;
  }

  bool TryAddPair(int type, GeneratedWorkload* out) {
    Duration w = options_.base_window;
    switch (type) {
      case 1: {  // Prefix.
        int n = Span(std::max(3, min_operands_), max_operands_);
        std::vector<EventTypeId> full = SampleOperandList(n);
        int k = Span(2, n - 1);
        std::vector<EventTypeId> prefix(full.begin(), full.begin() + k);
        return AddPair(out, type, Flat(PatternOp::kSeq, prefix), w,
                       Flat(PatternOp::kSeq, full), w);
      }
      case 2: {  // Suffix.
        int n = Span(std::max(3, min_operands_), max_operands_);
        std::vector<EventTypeId> full = SampleOperandList(n);
        int k = Span(2, n - 1);
        std::vector<EventTypeId> suffix(full.end() - k, full.end());
        return AddPair(out, type, Flat(PatternOp::kSeq, suffix), w,
                       Flat(PatternOp::kSeq, full), w);
      }
      case 3: {  // Subsequence, not substring.
        int n = Span(std::max(3, min_operands_), max_operands_);
        std::vector<EventTypeId> full = SampleOperandList(n);
        // Keep first and last; drop at least one interior element so the
        // result has a gap (subsequence, never a substring).
        std::vector<EventTypeId> sub;
        sub.push_back(full.front());
        bool dropped = false;
        for (int i = 1; i < n - 1; ++i) {
          if (rng_.Bernoulli(0.5)) {
            dropped = true;
            continue;
          }
          sub.push_back(full[static_cast<size_t>(i)]);
        }
        sub.push_back(full.back());
        if (!dropped) return false;  // Retry with fresh randomness.
        return AddPair(out, type, Flat(PatternOp::kSeq, sub), w,
                       Flat(PatternOp::kSeq, full), w);
      }
      case 4: {  // Common substring only.
        int run = Span(2, std::max(2, max_operands_ - 2));
        int extra = 2;
        std::vector<EventTypeId> pool = SampleTypes(run + 2 * extra);
        std::vector<EventTypeId> shared(pool.begin(), pool.begin() + run);
        std::vector<EventTypeId> a = {pool[static_cast<size_t>(run)]};
        a.insert(a.end(), shared.begin(), shared.end());
        a.push_back(pool[static_cast<size_t>(run + 1)]);
        std::vector<EventTypeId> b = {pool[static_cast<size_t>(run + 2)]};
        b.insert(b.end(), shared.begin(), shared.end());
        b.push_back(pool[static_cast<size_t>(run + 3)]);
        return AddPair(out, type, Flat(PatternOp::kSeq, a), w,
                       Flat(PatternOp::kSeq, b), w);
      }
      case 5: {  // Different windows, prefix-shareable patterns.
        int n = Span(std::max(3, min_operands_), max_operands_);
        std::vector<EventTypeId> full = SampleOperandList(n);
        int k = Span(2, n - 1);
        std::vector<EventTypeId> prefix(full.begin(), full.begin() + k);
        Duration sw = static_cast<Duration>(
            static_cast<double>(w) * options_.window_ratio);
        if (sw <= 0) sw = 1;
        return AddPair(out, type, Flat(PatternOp::kSeq, prefix), sw,
                       Flat(PatternOp::kSeq, full), w);
      }
      case 6: {  // Same list, different operators.
        int n = Span(std::max(2, min_operands_),
                     std::min(max_operands_, 5));
        n = std::min(n, 3);
        std::vector<EventTypeId> types = SampleRareTypes(n);
        // Mostly SEQ/CONJ pairs (the paper's primary OTT rule, Fig 7a);
        // DISJ pairs occasionally — pass-through DISJ matches every operand
        // instance, so DISJ-heavy workloads drown in emissions.
        int variant = Span(0, 3);
        PatternOp op_a = variant == 3 ? PatternOp::kConj : PatternOp::kSeq;
        PatternOp op_b = variant == 3 ? PatternOp::kDisj : PatternOp::kConj;
        return AddPair(out, type, Flat(op_a, types), w, Flat(op_b, types), w);
      }
      case 7: {  // Nested with common innermost sub-query.
        int level = std::max(2, options_.nested_level);
        // Innermost shared sub-query; outer layers wrap with rare types so
        // deep nesting does not multiply match rates combinatorially.
        std::vector<EventTypeId> inner_types = SampleRareTypes(2);
        PatternExpr inner = Flat(PatternOp::kConj, inner_types);
        auto wrap = [&](PatternExpr core) {
          PatternExpr current = std::move(core);
          for (int l = 2; l <= level; ++l) {
            EventTypeId fresh = SampleRareTypes(1)[0];
            PatternOp op = l % 2 == 0 ? PatternOp::kSeq : PatternOp::kConj;
            current = PatternExpr::Operator(
                op, {PatternExpr::Leaf(fresh), std::move(current)});
          }
          return current;
        };
        return AddPair(out, type, wrap(inner), w, wrap(inner), w);
      }
      default:
        MOTTO_CHECK(false) << "bad sharing type " << type;
    }
    return false;
  }

  WorkloadOptions options_;
  EventTypeRegistry* registry_;
  Rng rng_;
  std::vector<EventTypeId> universe_;
  std::vector<std::vector<EventTypeId>> motifs_;
  std::unordered_set<std::string> seen_;
  int min_operands_ = 2;
  int max_operands_ = 4;
};

}  // namespace

Result<GeneratedWorkload> GenerateWorkload(const WorkloadOptions& options,
                                           EventTypeRegistry* registry) {
  if (options.num_queries <= 0) {
    return InvalidArgumentError("num_queries must be positive");
  }
  if (options.basic_ratio < 0.0 || options.basic_ratio > 1.0) {
    return InvalidArgumentError("basic_ratio must be in [0, 1]");
  }
  if (options.base_window <= 0) {
    return InvalidArgumentError("base_window must be positive");
  }
  if (options.only_type < 0 || options.only_type > 7) {
    return InvalidArgumentError("only_type must be 0 (mixed) or 1..7");
  }
  Generator generator(options, registry);
  return generator.Generate();
}

}  // namespace motto
