#include "workload/harness.h"

#include <algorithm>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <variant>

#include "engine/parallel_executor.h"
#include "engine/sharded_executor.h"

namespace motto {

namespace {

using MatchSet = std::multiset<std::string>;

/// Whichever executor ComparisonOptions selected, behind one Run/jqp
/// surface so the measurement loop stays engine-agnostic.
struct AnyExecutor {
  std::variant<Executor, ParallelExecutor, ShardedExecutor> impl;

  Result<RunResult> Run(const EventStream& stream,
                        const ExecutorOptions& options = ExecutorOptions{}) {
    return std::visit(
        [&](auto& executor) { return executor.Run(stream, options); }, impl);
  }

  const Jqp& jqp() const {
    return std::visit([](const auto& executor) -> const Jqp& {
      return executor.jqp();
    }, impl);
  }
};

Result<AnyExecutor> MakeExecutor(Jqp jqp, const ComparisonOptions& options) {
  if (options.shards > 1) {
    MOTTO_ASSIGN_OR_RETURN(
        ShardedExecutor sharded,
        ShardedExecutor::Create(std::move(jqp), options.shards,
                                options.threads));
    return AnyExecutor{std::move(sharded)};
  }
  if (options.threads > 1) {
    MOTTO_ASSIGN_OR_RETURN(
        ParallelExecutor parallel,
        ParallelExecutor::Create(std::move(jqp), options.threads,
                                 options.batch_size, options.pipe_depth));
    return AnyExecutor{std::move(parallel)};
  }
  MOTTO_ASSIGN_OR_RETURN(Executor executor, Executor::Create(std::move(jqp)));
  return AnyExecutor{std::move(executor)};
}

std::map<std::string, MatchSet> SinkFingerprints(const RunResult& run) {
  std::map<std::string, MatchSet> out;
  for (const auto& [name, events] : run.sink_events) {
    MatchSet& set = out[name];
    for (const Event& e : events) set.insert(e.Fingerprint());
  }
  return out;
}

}  // namespace

Result<std::vector<ModeRun>> CompareModes(const std::vector<Query>& queries,
                                          const EventStream& stream,
                                          EventTypeRegistry* registry,
                                          const ComparisonOptions& options) {
  StreamStats stats = ComputeStats(stream);
  std::vector<OptimizerMode> modes = options.modes;
  if (std::find(modes.begin(), modes.end(), OptimizerMode::kNa) ==
      modes.end()) {
    modes.insert(modes.begin(), OptimizerMode::kNa);
  }

  // Phase 1: optimize every mode and build its executor.
  std::vector<ModeRun> runs;
  std::vector<AnyExecutor> executors;
  for (OptimizerMode mode : modes) {
    OptimizerOptions optimizer_options;
    optimizer_options.mode = mode;
    optimizer_options.planner = options.planner;
    optimizer_options.calibration = options.calibration;
    Optimizer optimizer(registry, stats, optimizer_options);
    MOTTO_ASSIGN_OR_RETURN(OptimizeOutcome outcome,
                           optimizer.Optimize(queries));
    MOTTO_ASSIGN_OR_RETURN(AnyExecutor executor,
                           MakeExecutor(std::move(outcome.jqp), options));
    ModeRun mode_run;
    mode_run.mode = mode;
    mode_run.optimize_seconds = outcome.rewrite_seconds + outcome.plan_seconds;
    mode_run.planned_cost = outcome.planned_cost;
    mode_run.default_cost = outcome.default_cost;
    mode_run.exact = outcome.exact;
    mode_run.jqp_nodes = executor.jqp().nodes.size();
    runs.push_back(std::move(mode_run));
    executors.push_back(std::move(executor));
  }

  // Phase 2: interleaved measurement rounds. Throughput uses count-only
  // sinks (retaining match events costs the same in every plan and only
  // dilutes the comparison); interleaving means background-load bursts on
  // the host hit every mode instead of one mode's whole measurement.
  ExecutorOptions measure_options;
  measure_options.count_matches_only = true;
  measure_options.eval_order = options.eval_order;
  std::vector<double> best_elapsed(modes.size(),
                                   std::numeric_limits<double>::infinity());
  int rounds = std::max(1, options.measure_runs);
  for (int round = options.warmup ? -1 : 0; round < rounds; ++round) {
    for (size_t m = 0; m < modes.size(); ++m) {
      MOTTO_ASSIGN_OR_RETURN(RunResult run,
                             executors[m].Run(stream, measure_options));
      if (round < 0) continue;  // Warmup round, discard.
      best_elapsed[m] = std::min(best_elapsed[m], run.elapsed_seconds);
      if (round == 0) {
        // Per-user-query match totals (ignore sub-query sinks).
        std::set<std::string> user_queries;
        for (const Query& q : queries) user_queries.insert(q.name);
        for (const auto& [name, count] : run.sink_counts) {
          if (user_queries.count(name) > 0) runs[m].total_matches += count;
        }
      }
    }
  }
  for (size_t m = 0; m < modes.size(); ++m) {
    runs[m].throughput_eps =
        best_elapsed[m] > 0 ? static_cast<double>(stream.size()) /
                                  best_elapsed[m]
                            : 0.0;
  }

  // Phase 3: consistency checks against NA.
  uint64_t na_matches = runs[0].total_matches;
  double na_throughput = runs[0].throughput_eps;
  std::map<std::string, MatchSet> na_fingerprints;
  for (size_t m = 0; m < modes.size(); ++m) {
    // A zero NA baseline (empty stream or sub-clock-resolution replay)
    // cannot anchor normalization; report 1.0 but flag it so nobody plots
    // the forced value as a real speedup.
    runs[m].normalized =
        na_throughput > 0 ? runs[m].throughput_eps / na_throughput : 1.0;
    if (na_throughput <= 0) {
      runs[m].report.warnings.push_back(
          "NA baseline throughput is zero; normalized throughput forced to "
          "1.0 and not meaningful");
    }
    if (m > 0 && runs[m].total_matches != na_matches) {
      return InternalError(
          std::string(OptimizerModeName(modes[m])) + " produced " +
          std::to_string(runs[m].total_matches) + " matches but NA " +
          std::to_string(na_matches));
    }
    if (options.verify_matches) {
      ExecutorOptions verify_options;
      verify_options.eval_order = options.eval_order;
      MOTTO_ASSIGN_OR_RETURN(RunResult verify_run,
                             executors[m].Run(stream, verify_options));
      std::map<std::string, MatchSet> fingerprints =
          SinkFingerprints(verify_run);
      if (m == 0) {
        na_fingerprints = std::move(fingerprints);
      } else {
        for (const Query& q : queries) {
          if (fingerprints[q.name] != na_fingerprints[q.name]) {
            return InternalError(std::string(OptimizerModeName(modes[m])) +
                                 " diverges from NA on query " + q.name);
          }
        }
      }
    }
  }

  // Phase 4: optional per-mode reports. Reports need per-node timing, which
  // the throughput rounds deliberately avoid, so this is an extra replay.
  if (options.collect_reports) {
    ExecutorOptions report_options;
    report_options.collect_node_timing = true;
    report_options.count_matches_only = true;
    report_options.eval_order = options.eval_order;
    for (size_t m = 0; m < modes.size(); ++m) {
      MOTTO_ASSIGN_OR_RETURN(RunResult run,
                             executors[m].Run(stream, report_options));
      obs::RunReport report =
          obs::BuildRunReport(executors[m].jqp(), stats, run);
      report.warnings.insert(report.warnings.begin(),
                             runs[m].report.warnings.begin(),
                             runs[m].report.warnings.end());
      runs[m].report = std::move(report);
    }
  }
  return runs;
}

Result<std::vector<ScalingPoint>> MeasureCoreScaling(const Jqp& jqp,
                                                     const EventStream& stream,
                                                     int max_threads,
                                                     bool run_wallclock) {
  if (max_threads < 1) {
    return InvalidArgumentError("max_threads must be >= 1");
  }
  MOTTO_ASSIGN_OR_RETURN(Executor executor, Executor::Create(jqp));
  ExecutorOptions timing;
  timing.collect_node_timing = true;
  MOTTO_ASSIGN_OR_RETURN(RunResult timed, executor.Run(stream, timing));

  std::vector<double> work;
  double total_work = 0.0;
  for (const NodeStats& stats : timed.node_stats) {
    work.push_back(stats.busy_seconds);
    total_work += stats.busy_seconds;
  }
  std::sort(work.begin(), work.end(), std::greater<double>());
  // The executor's per-event dispatch outside node bodies is inherently
  // sequential per worker but partitions with the nodes; treat measured
  // node busy time as the parallelizable work.
  double base_throughput = timed.ThroughputEps();

  std::vector<ScalingPoint> points;
  for (int threads = 1; threads <= max_threads; ++threads) {
    // LPT makespan of node work on `threads` workers.
    std::vector<double> bins(static_cast<size_t>(threads), 0.0);
    for (double w : work) {
      *std::min_element(bins.begin(), bins.end()) += w;
    }
    double makespan = *std::max_element(bins.begin(), bins.end());
    ScalingPoint point;
    point.threads = threads;
    point.modeled_speedup =
        makespan > 0 && total_work > 0 ? total_work / makespan : 1.0;
    point.modeled_throughput_eps = base_throughput * point.modeled_speedup;
    if (run_wallclock) {
      MOTTO_ASSIGN_OR_RETURN(
          ParallelExecutor parallel,
          ParallelExecutor::Create(jqp, threads, /*batch_size=*/2048));
      MOTTO_ASSIGN_OR_RETURN(RunResult run, parallel.Run(stream));
      point.wallclock_throughput_eps = run.ThroughputEps();
    }
    points.push_back(point);
  }
  return points;
}

}  // namespace motto
