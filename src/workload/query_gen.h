#ifndef MOTTO_WORKLOAD_QUERY_GEN_H_
#define MOTTO_WORKLOAD_QUERY_GEN_H_

#include <vector>

#include "ccl/pattern.h"
#include "common/result.h"
#include "workload/data_gen.h"

namespace motto {

/// Workload generator implementing Table IV of the paper: pairs of queries
/// exhibiting one of seven sharing-opportunity types.
///
///   Basic group (same operator, same window):
///     1. L is a prefix of L'
///     2. L is a suffix of L'
///     3. L is a subsequence but not a substring of L'
///     4. L and L' share a substring without types 1-3 holding
///   Complex group:
///     5. different window constraints (prefix sharing across windows)
///     6. same pattern list, different pattern operators
///     7. nested queries sharing the innermost sub-query
///
/// `basic_ratio` is the paper's r: the fraction of queries drawn from the
/// basic group. Queries never duplicate (canonical key + window dedup).
struct WorkloadOptions {
  Scenario scenario = Scenario::kStockMarket;
  int num_queries = 100;
  double basic_ratio = 1.0;
  Duration base_window = Seconds(10);
  /// Nested level for type-7 pairs (paper default 2, Fig 14d up to 8).
  int nested_level = 2;
  /// s_w : b_w ratio for type-5 pairs (Fig 14c: 4.0 down to 0.25).
  double window_ratio = 2.0;
  uint64_t seed = 7;
  /// Operand count range for the longer query of each pair; 0 means the
  /// scenario default (stock 4..7, data center 2..4; §VII-A: stock queries
  /// have longer operand lists).
  int min_operands = 0;
  int max_operands = 0;
  /// When in 1..7, every pair uses this Table IV type (single-type
  /// ablations: Fig 14c uses type 5, Fig 14d type 7). 0 mixes per
  /// basic_ratio.
  int only_type = 0;
};

struct GeneratedWorkload {
  std::vector<Query> queries;
  /// Table IV sharing-opportunity type (1..7) each query came from.
  std::vector<int> sharing_type;
};

Result<GeneratedWorkload> GenerateWorkload(const WorkloadOptions& options,
                                           EventTypeRegistry* registry);

}  // namespace motto

#endif  // MOTTO_WORKLOAD_QUERY_GEN_H_
