#ifndef MOTTO_WORKLOAD_IO_H_
#define MOTTO_WORKLOAD_IO_H_

#include <string>
#include <vector>

#include "ccl/pattern.h"
#include "common/result.h"
#include "event/stream.h"

namespace motto {

/// Workload files: one CCL query per non-empty line; '#' starts a comment.
/// Query names are "q1".."qN" in file order unless a line is prefixed with
/// "name:" (e.g. "lost_packets: SELECT * FROM dc MATCHING [...]").
Result<std::vector<Query>> ParseWorkloadText(const std::string& text,
                                             EventTypeRegistry* registry);
Result<std::vector<Query>> LoadWorkloadFile(const std::string& path,
                                            EventTypeRegistry* registry);

/// Renders queries back to workload-file text (windows in microseconds).
std::string WorkloadToText(const std::vector<Query>& queries,
                           const EventTypeRegistry& registry);
Status SaveWorkloadFile(const std::string& path,
                        const std::vector<Query>& queries,
                        const EventTypeRegistry& registry);

/// Stream CSV: header "type,ts_us,value,aux", one primitive event per line,
/// sorted by timestamp. Types are registered on load.
Result<EventStream> ParseStreamCsv(const std::string& text,
                                   EventTypeRegistry* registry);
Result<EventStream> LoadStreamCsv(const std::string& path,
                                  EventTypeRegistry* registry);
std::string StreamToCsv(const EventStream& stream,
                        const EventTypeRegistry& registry);
Status SaveStreamCsv(const std::string& path, const EventStream& stream,
                     const EventTypeRegistry& registry);

}  // namespace motto

#endif  // MOTTO_WORKLOAD_IO_H_
