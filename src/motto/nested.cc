#include "motto/nested.h"

namespace motto {

namespace {

/// Recursively divides `expr`; returns the operand type that represents it
/// in the parent (leaf type, or composite type of an emitted inner query).
Result<EventTypeId> Divide(const PatternExpr& expr, const Query& query,
                           bool outermost, EventTypeRegistry* registry,
                           CompositeCatalog* catalog,
                           std::vector<FlatQuery>* chain, int* counter) {
  if (expr.is_leaf()) {
    if (expr.leaf_predicate().empty()) return expr.leaf_type();
    // Predicated operands are interned as selector symbols so equal
    // selections become equal operands for the sharing search.
    return catalog->RegisterSelector(expr.leaf_type(), expr.leaf_predicate(),
                                     registry);
  }
  if (!outermost && !expr.negated().empty()) {
    return InvalidArgumentError(
        "NEG is only supported on the outermost pattern layer (query '" +
        query.name + "')");
  }
  FlatPattern flat;
  flat.op = expr.op();
  for (const PatternExpr& n : expr.negated()) {
    if (n.leaf_predicate().empty()) {
      flat.negated.push_back(n.leaf_type());
    } else {
      flat.negated.push_back(catalog->RegisterSelector(
          n.leaf_type(), n.leaf_predicate(), registry));
    }
  }
  for (const PatternExpr& child : expr.children()) {
    MOTTO_ASSIGN_OR_RETURN(
        EventTypeId operand,
        Divide(child, query, /*outermost=*/false, registry, catalog, chain,
               counter));
    flat.operands.push_back(operand);
  }
  FlatQuery sub;
  sub.pattern = flat;
  sub.window = query.window;
  if (outermost) {
    sub.name = query.name;
  } else {
    sub.name = query.name + "#in" + std::to_string((*counter)++);
  }
  chain->push_back(sub);
  return catalog->Register(flat, query.window, registry);
}

}  // namespace

Result<std::vector<FlatQuery>> DivideNested(const Query& query,
                                            EventTypeRegistry* registry,
                                            CompositeCatalog* catalog) {
  MOTTO_RETURN_IF_ERROR(ValidatePattern(query.pattern));
  if (query.pattern.is_leaf()) {
    return InvalidArgumentError("query '" + query.name +
                                "' is a bare event type, not a pattern");
  }
  if (query.window <= 0) {
    return InvalidArgumentError("query '" + query.name +
                                "' needs a positive window");
  }
  std::vector<FlatQuery> chain;
  int counter = 0;
  MOTTO_RETURN_IF_ERROR(Divide(query.pattern, query, /*outermost=*/true,
                               registry, catalog, &chain, &counter)
                            .status());
  return chain;
}

Result<std::vector<FlatQuery>> DivideWorkload(const std::vector<Query>& queries,
                                              EventTypeRegistry* registry,
                                              CompositeCatalog* catalog) {
  std::vector<FlatQuery> all;
  for (const Query& query : queries) {
    MOTTO_ASSIGN_OR_RETURN(std::vector<FlatQuery> chain,
                           DivideNested(query, registry, catalog));
    all.insert(all.end(), chain.begin(), chain.end());
  }
  return all;
}

}  // namespace motto
