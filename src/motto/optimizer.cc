#include "motto/optimizer.h"

#include <chrono>
#include <unordered_map>

#include "engine/plan_util.h"
#include "motto/nested.h"
#include "planner/plan_builder.h"

namespace motto {

namespace {
using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

RewriterOptions RewriterOptionsFor(OptimizerMode mode) {
  switch (mode) {
    case OptimizerMode::kNa:
      return RewriterOptions::None();
    case OptimizerMode::kMst:
      return RewriterOptions::MstOnly();
    case OptimizerMode::kLcse:
      return RewriterOptions::Lcse();
    case OptimizerMode::kMotto:
      return RewriterOptions::Motto();
  }
  return RewriterOptions::None();
}

/// Appends chains executing independently (no sharing, no deduplication) to
/// `jqp` — the paper's default plan (Fig. 2), also used by the MST/LCSE
/// baselines for nested queries, whose division-based sharing they overlook
/// (§VII-A: "sharing opportunities in the second group are overlooked").
Status AppendChainsUnshared(const std::vector<std::vector<FlatQuery>>& chains,
                            const CompositeCatalog& catalog,
                            EventTypeRegistry* registry, Jqp* jqp) {
  for (const std::vector<FlatQuery>& chain : chains) {
    // Composite type -> executable node within this chain only.
    std::unordered_map<EventTypeId, int32_t> local;
    for (const FlatQuery& query : chain) {
      PatternSpec spec;
      spec.op = query.pattern.op;
      spec.window = query.window;
      for (EventTypeId t : query.pattern.negated) {
        if (const CompositeCatalog::SelectorInfo* selector =
                catalog.FindSelector(t)) {
          spec.negated.push_back(selector->base);
          spec.negated_predicates.push_back(selector->predicate);
        } else {
          spec.negated.push_back(t);
          spec.negated_predicates.emplace_back();
        }
      }
      spec.output_type =
          RegisterOutputType(query.pattern.Canonical(),
                             query.pattern.op == PatternOp::kDisj
                                 ? 0
                                 : query.window,
                             registry);
      std::vector<int32_t> inputs;
      int32_t slot_base = 0;
      for (EventTypeId type : query.pattern.operands) {
        OperandBinding binding;
        int32_t arity = catalog.ArityOf(type, *registry);
        if (registry->IsPrimitive(type)) {
          binding.types = {type};
          binding.channel = kRawChannel;
          binding.slot_map = {slot_base};
        } else if (const CompositeCatalog::SelectorInfo* selector =
                       catalog.FindSelector(type)) {
          binding.types = {selector->base};
          binding.channel = kRawChannel;
          binding.slot_map = {slot_base};
          binding.predicate = selector->predicate;
        } else {
          auto it = local.find(type);
          if (it == local.end()) {
            return InternalError("NA plan: no local producer for " +
                                 registry->NameOf(type));
          }
          binding.types = catalog.AcceptedTypes(type, *registry);
          bool found = false;
          for (size_t k = 0; k < inputs.size(); ++k) {
            if (inputs[k] == it->second) {
              binding.channel = static_cast<Channel>(k + 1);
              found = true;
            }
          }
          if (!found) {
            inputs.push_back(it->second);
            binding.channel = static_cast<Channel>(inputs.size());
          }
          binding.slot_map.resize(static_cast<size_t>(arity));
          for (int32_t s = 0; s < arity; ++s) {
            binding.slot_map[static_cast<size_t>(s)] = slot_base + s;
          }
        }
        slot_base += arity;
        spec.operands.push_back(std::move(binding));
      }
      EventTypeId out_type = spec.output_type;
      JqpNode node;
      node.spec = std::move(spec);
      node.inputs = std::move(inputs);
      node.label = query.name;
      int32_t id = jqp->AddNode(std::move(node));
      local[out_type] = id;
      jqp->sinks.push_back(Jqp::Sink{query.name, id});
    }
  }
  return Status::Ok();
}

}  // namespace

std::vector<double> CalibrationMultipliers(
    const Jqp& jqp, const PlanProvenance& provenance,
    const SharingGraph& graph,
    const std::vector<std::pair<std::string, double>>& calibration) {
  std::vector<double> multipliers(jqp.nodes.size(), 1.0);
  if (calibration.empty()) return multipliers;
  for (size_t i = 0; i < jqp.nodes.size(); ++i) {
    std::string_view family = "unshared";
    if (i < provenance.nodes.size()) {
      const PlanNodeOrigin& origin = provenance.nodes[i];
      if (origin.sharing_node >= 0) {
        if (origin.edge >= 0 &&
            static_cast<size_t>(origin.edge) < graph.edges.size()) {
          family = RewriteFamilyName(ClassifyEdge(
              graph, graph.edges[static_cast<size_t>(origin.edge)]));
        } else {
          family = "scratch";
        }
      }
    }
    for (const auto& [name, multiplier] : calibration) {
      if (name == family) multipliers[i] = multiplier;
    }
  }
  return multipliers;
}

std::string_view OptimizerModeName(OptimizerMode mode) {
  switch (mode) {
    case OptimizerMode::kNa:
      return "NA";
    case OptimizerMode::kMst:
      return "MST";
    case OptimizerMode::kLcse:
      return "LCSE";
    case OptimizerMode::kMotto:
      return "MOTTO";
  }
  return "?";
}

Optimizer::Optimizer(EventTypeRegistry* registry, StreamStats stats,
                     OptimizerOptions options)
    : registry_(registry), stats_(std::move(stats)), options_(options) {}

Result<OptimizeOutcome> Optimizer::Optimize(const std::vector<Query>& queries) {
  CompositeCatalog catalog;
  std::vector<std::vector<FlatQuery>> chains;
  for (const Query& query : queries) {
    MOTTO_ASSIGN_OR_RETURN(std::vector<FlatQuery> chain,
                           DivideNested(query, registry_, &catalog));
    chains.push_back(std::move(chain));
  }
  return OptimizeDivided(chains, std::move(catalog));
}

Result<OptimizeOutcome> Optimizer::OptimizeFlat(
    const std::vector<FlatQuery>& queries) {
  CompositeCatalog catalog;
  std::vector<std::vector<FlatQuery>> chains;
  for (const FlatQuery& query : queries) {
    if (query.window <= 0) {
      return InvalidArgumentError("query '" + query.name +
                                  "' needs a positive window");
    }
    if (query.pattern.operands.empty()) {
      return InvalidArgumentError("query '" + query.name + "' has no operands");
    }
    catalog.Register(query.pattern, query.window, registry_);
    chains.push_back({query});
  }
  return OptimizeDivided(chains, std::move(catalog));
}

Result<OptimizeOutcome> Optimizer::OptimizeDivided(
    const std::vector<std::vector<FlatQuery>>& chains,
    CompositeCatalog catalog) {
  OptimizeOutcome outcome;
  CostModel cost_model(stats_);

  std::vector<FlatQuery> flat;
  for (const std::vector<FlatQuery>& chain : chains) {
    flat.insert(flat.end(), chain.begin(), chain.end());
  }
  outcome.num_flat_queries = flat.size();

  // Cost of executing every (sub-)query independently, duplicates included.
  for (const FlatQuery& query : flat) {
    outcome.default_cost +=
        EstimateFlatPattern(query.pattern.Canonical(), query.window, catalog,
                            *registry_, &cost_model)
            .cpu_per_second;
  }

  if (options_.mode == OptimizerMode::kNa) {
    Jqp jqp;
    MOTTO_RETURN_IF_ERROR(
        AppendChainsUnshared(chains, catalog, registry_, &jqp));
    outcome.provenance.nodes.resize(jqp.nodes.size());
    outcome.eval_orders = AnnotateEvalOrders(
        &jqp, stats_,
        CalibrationMultipliers(jqp, outcome.provenance, outcome.sharing_graph,
                               options_.calibration));
    outcome.jqp = std::move(jqp);
    outcome.planned_cost = outcome.default_cost;
    outcome.exact = true;
    return outcome;
  }

  // Only MOTTO understands nested queries (§IV-D): the MST/LCSE baselines
  // treat them as opaque and execute their chains unshared.
  std::vector<FlatQuery> shareable;
  std::vector<std::vector<FlatQuery>> opaque;
  for (const std::vector<FlatQuery>& chain : chains) {
    if (options_.mode == OptimizerMode::kMotto || chain.size() == 1) {
      shareable.insert(shareable.end(), chain.begin(), chain.end());
    } else {
      opaque.push_back(chain);
    }
  }

  Clock::time_point rewrite_start = Clock::now();
  RewriterOptions rewriter_options = RewriterOptionsFor(options_.mode);
  rewriter_options.probe = options_.probe;
  outcome.sharing_graph = BuildSharingGraph(shareable, rewriter_options,
                                            registry_, &catalog, &cost_model);
  outcome.rewrite_seconds = SecondsSince(rewrite_start);

  Clock::time_point plan_start = Clock::now();
  PlannerOptions planner_options = options_.planner;
  planner_options.probe = options_.probe;
  outcome.decision = SelectPlan(outcome.sharing_graph, planner_options);
  outcome.plan_seconds = SecondsSince(plan_start);
  outcome.exact = outcome.decision.exact;
  outcome.planned_cost = outcome.decision.cost;
  for (const std::vector<FlatQuery>& chain : opaque) {
    for (const FlatQuery& query : chain) {
      outcome.planned_cost +=
          EstimateFlatPattern(query.pattern.Canonical(), query.window,
                              catalog, *registry_, &cost_model)
              .cpu_per_second;
    }
  }

  MOTTO_ASSIGN_OR_RETURN(Jqp jqp,
                         BuildJqp(outcome.sharing_graph, outcome.decision,
                                  catalog, registry_, &outcome.provenance));
  MOTTO_RETURN_IF_ERROR(
      AppendChainsUnshared(opaque, catalog, registry_, &jqp));
  // Opaque chain nodes executed unshared get the default (no-sharing) origin.
  outcome.provenance.nodes.resize(jqp.nodes.size());
  outcome.eval_orders = AnnotateEvalOrders(
      &jqp, stats_,
      CalibrationMultipliers(jqp, outcome.provenance, outcome.sharing_graph,
                             options_.calibration));
  outcome.jqp = std::move(jqp);
  return outcome;
}

}  // namespace motto
