#ifndef MOTTO_MOTTO_SHARING_GRAPH_H_
#define MOTTO_MOTTO_SHARING_GRAPH_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "ccl/pattern.h"
#include "common/time.h"

namespace motto {

/// How a beneficiary query is computed from a source query's output
/// (the label of one edge of the paper's DSMT graph, §V-B).
struct RewriteRecipe {
  enum class Kind {
    /// Same pattern, source window larger: SpanFilter(target window)
    /// (paper §IV-D mark-point case 1 / extended-source case 2).
    kSpanFilter,
    /// Source pattern is a contiguous run (SEQ) / sub-multiset (CONJ) of the
    /// target: target re-executed with the source's composite as one operand
    /// (MST substring case and DST, §IV-A/B).
    kCompositeOperand,
    /// SEQ source is a non-contiguous subsequence of a SEQ target:
    /// CONJ(composite & rest) followed by an order filter (MST non-substring
    /// case, paper Example 1).
    kMergeOrdered,
    /// OTT SEQ-from-CONJ: Filter_sc on the source output (Table I), plus a
    /// span filter when the source window is larger.
    kOrderFilter,
    /// Target operators re-executed over a DISJ source's pass-through
    /// output: OTT CONJ/SEQ-from-DISJ and DISJ-from-DISJ subset sharing.
    kFromDisj,
  };

  Kind kind = Kind::kCompositeOperand;
  /// Target operand positions covered by the source's output, ascending.
  std::vector<int32_t> covered;
};

std::string_view RecipeKindName(RewriteRecipe::Kind kind);

/// Which of the paper's sharing techniques produced a rewrite: merging whole
/// queries (MST, §IV-A), decomposing into common sub-queries (DST, §IV-B),
/// transforming across operators (OTT, §IV-C), or window-only span filtering
/// (§IV-D). Used to label explain output and calibration rows.
enum class RewriteFamily : uint8_t { kMst, kDst, kOtt, kWindow };

std::string_view RewriteFamilyName(RewriteFamily family);

/// One candidate (sub-)query: a node of the DSMT graph. Terminal nodes are
/// user queries (including nested-division sub-queries, which must always
/// execute); Steiner nodes are "interesting sub-queries" the planner may or
/// may not materialize.
struct SharingNode {
  FlatPattern pattern;  // Canonical; operands may be composite types.
  Duration window = 0;
  std::string key;
  bool terminal = false;
  /// User queries answered directly by this node's output.
  std::vector<std::string> query_names;
  /// Cost of computing this node from the raw stream (edge from q0).
  double scratch_cost = 0.0;
  /// Estimated emissions per second (used for downstream edge costs).
  double output_rate = 0.0;
  /// Composite type id of this node's output events.
  EventTypeId output_type = kInvalidEventType;
};

struct SharingEdge {
  int32_t source = -1;
  int32_t target = -1;
  RewriteRecipe recipe;
  /// Cost of computing the target from the source's output.
  double cost = 0.0;
};

/// The sharing graph handed to the DSMT planner.
struct SharingGraph {
  std::vector<SharingNode> nodes;
  std::vector<SharingEdge> edges;
  std::unordered_map<std::string, int32_t> index;  // key -> node id.

  std::string ToString(const EventTypeRegistry& registry) const;
};

/// Node identity: canonical pattern + window (window-free for DISJ, whose
/// pass-through output does not depend on it).
std::string SharingNodeKey(const FlatPattern& pattern, Duration window);

/// Classifies a (would-be) edge source->target of `kind` into its rewrite
/// family: span filters are window sharing; order-filter / from-disj recipes
/// only arise from operator transformation; composite-operand and
/// merge-ordered are MST when both endpoints are user queries and DST when
/// the source is a Steiner (decomposition) node.
RewriteFamily ClassifyRewrite(const SharingGraph& graph, int32_t source,
                              int32_t target, RewriteRecipe::Kind kind);

inline RewriteFamily ClassifyEdge(const SharingGraph& graph,
                                  const SharingEdge& edge) {
  return ClassifyRewrite(graph, edge.source, edge.target, edge.recipe.kind);
}

}  // namespace motto

#endif  // MOTTO_MOTTO_SHARING_GRAPH_H_
