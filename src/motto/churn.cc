#include "motto/churn.h"

#include <algorithm>
#include <fstream>
#include <numeric>
#include <sstream>
#include <string_view>
#include <unordered_set>

#include "ccl/parser.h"
#include "common/parse.h"
#include "engine/runtime.h"
#include "motto/nested.h"
#include "motto/rewriter.h"
#include "obs/metrics.h"

namespace motto {

namespace {

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                        s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

std::string UserQueryOf(std::string_view sink_name) {
  size_t pos = sink_name.find("#in");
  if (pos == std::string_view::npos) return std::string(sink_name);
  return std::string(sink_name.substr(0, pos));
}

Result<ChurnScript> ParseChurnScript(const std::string& text,
                                     EventTypeRegistry* registry) {
  ChurnScript script;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view sv = line;
    size_t hash = sv.find('#');
    if (hash != std::string_view::npos) sv = sv.substr(0, hash);
    sv = Trim(sv);
    if (sv.empty()) continue;
    auto err = [line_no](const std::string& msg) {
      return InvalidArgumentError("churn script line " +
                                  std::to_string(line_no) + ": " + msg);
    };
    size_t sp1 = sv.find_first_of(" \t");
    if (sp1 == std::string_view::npos) {
      return err("expected '<ts_us> add <name>: <query>' or "
                 "'<ts_us> remove <name>'");
    }
    Result<int64_t> ts = ParseInt64(sv.substr(0, sp1));
    if (!ts.ok()) {
      return err("bad timestamp '" + std::string(sv.substr(0, sp1)) + "'");
    }
    std::string_view rest = Trim(sv.substr(sp1));
    size_t sp2 = rest.find_first_of(" \t");
    std::string_view verb =
        sp2 == std::string_view::npos ? rest : rest.substr(0, sp2);
    std::string_view payload =
        sp2 == std::string_view::npos ? std::string_view{}
                                      : Trim(rest.substr(sp2));
    ChurnCommand cmd;
    cmd.ts = *ts;
    if (verb == "add") {
      size_t colon = payload.find(':');
      if (colon == std::string_view::npos) {
        return err("add needs '<name>: <query>'");
      }
      std::string name(Trim(payload.substr(0, colon)));
      if (name.empty()) return err("add needs a query name");
      Result<Query> query =
          ccl::ParseQuery(Trim(payload.substr(colon + 1)), registry, name);
      if (!query.ok()) {
        return err(std::string(query.status().message()));
      }
      cmd.add = true;
      cmd.name = std::move(name);
      cmd.query = std::move(*query);
    } else if (verb == "remove") {
      if (payload.empty()) return err("remove needs a query name");
      cmd.add = false;
      cmd.name = std::string(payload);
    } else {
      return err("unknown command '" + std::string(verb) +
                 "' (want add or remove)");
    }
    if (!script.commands.empty() && cmd.ts < script.commands.back().ts) {
      return err("timestamps must be nondecreasing");
    }
    script.commands.push_back(std::move(cmd));
  }
  return script;
}

Result<ChurnScript> LoadChurnScript(const std::string& path,
                                    EventTypeRegistry* registry) {
  std::ifstream in(path);
  if (!in) {
    return InvalidArgumentError("cannot read churn script '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseChurnScript(buffer.str(), registry);
}

WorkloadSession::WorkloadSession(EventTypeRegistry* registry,
                                 StreamStats stats, OptimizerOptions options)
    : registry_(registry),
      stats_(std::move(stats)),
      options_(std::move(options)),
      cost_model_(stats_) {}

Status WorkloadSession::Initialize(const std::vector<Query>& queries) {
  if (initialized_) {
    return InternalError("WorkloadSession is already initialized");
  }
  if (options_.mode != OptimizerMode::kMotto) {
    return InvalidArgumentError(
        "online churn requires mode=motto: the incremental rewriter re-entry "
        "is only equivalent to a from-scratch build with every sharing "
        "technique enabled");
  }
  std::vector<std::vector<FlatQuery>> chains;
  std::vector<FlatQuery> flat;
  for (const Query& query : queries) {
    if (query_chains_.count(query.name) ||
        std::count_if(chains.begin(), chains.end(),
                      [&](const std::vector<FlatQuery>& c) {
                        return !c.empty() && c.back().name == query.name;
                      })) {
      return InvalidArgumentError("duplicate query name '" + query.name + "'");
    }
    MOTTO_ASSIGN_OR_RETURN(std::vector<FlatQuery> chain,
                           DivideNested(query, registry_, &catalog_));
    flat.insert(flat.end(), chain.begin(), chain.end());
    chains.push_back(std::move(chain));
  }
  RewriterOptions rewriter_options = RewriterOptions::Motto();
  rewriter_options.probe = options_.probe;
  graph_ = BuildSharingGraph(flat, rewriter_options, registry_, &catalog_,
                             &cost_model_);
  PlannerOptions planner_options = options_.planner;
  planner_options.probe = options_.probe;
  decision_ = SelectPlan(graph_, planner_options);
  MOTTO_RETURN_IF_ERROR(ValidateDecision(graph_, decision_).status());
  for (size_t i = 0; i < queries.size(); ++i) {
    MOTTO_RETURN_IF_ERROR(RegisterChain(queries[i].name, chains[i]));
  }
  MOTTO_RETURN_IF_ERROR(Rebuild());
  initialized_ = true;
  return Status::Ok();
}

Status WorkloadSession::RegisterChain(const std::string& user_name,
                                      const std::vector<FlatQuery>& chain) {
  std::vector<std::string> names;
  for (const FlatQuery& fq : chain) {
    auto it =
        graph_.index.find(SharingNodeKey(fq.pattern.Canonical(), fq.window));
    if (it == graph_.index.end()) {
      return InternalError("churn: no sharing node for flat query '" +
                           fq.name + "'");
    }
    flat_node_[fq.name] = it->second;
    terminal_owners_[it->second].insert(fq.name);
    names.push_back(fq.name);
  }
  query_chains_[user_name] = std::move(names);
  return Status::Ok();
}

Result<ReoptimizeStats> WorkloadSession::AddQuery(const Query& query) {
  if (!initialized_) {
    return InternalError("WorkloadSession is not initialized");
  }
  if (query_chains_.count(query.name)) {
    return InvalidArgumentError("query '" + query.name + "' is already live");
  }
  MOTTO_ASSIGN_OR_RETURN(std::vector<FlatQuery> chain,
                         DivideNested(query, registry_, &catalog_));
  RewriterOptions rewriter_options = RewriterOptions::Motto();
  rewriter_options.probe = options_.probe;
  SharingGraphExtension ext = ExtendSharingGraph(
      &graph_, chain, rewriter_options, registry_, &catalog_, &cost_model_);
  decision_.choice.resize(graph_.nodes.size(), kNodeNotSelected);
  MOTTO_RETURN_IF_ERROR(RegisterChain(query.name, chain));

  std::vector<char> touched(graph_.nodes.size(), 0);
  for (size_t v = ext.first_new_node; v < graph_.nodes.size(); ++v) {
    touched[v] = 1;
  }
  for (int32_t v : ext.touched_existing) {
    touched[static_cast<size_t>(v)] = 1;
  }
  MOTTO_ASSIGN_OR_RETURN(ReoptimizeStats stats, SolveTouchedRegion(touched));
  stats.added = true;
  stats.query = query.name;
  MOTTO_RETURN_IF_ERROR(Rebuild());
  return stats;
}

Result<ReoptimizeStats> WorkloadSession::SolveTouchedRegion(
    const std::vector<char>& touched) {
  const size_t n = graph_.nodes.size();
  // Connected components over the undirected edge skeleton: a change can
  // only alter optimal choices within components it reaches; every other
  // component's incumbent sub-tree stays optimal and is kept verbatim.
  std::vector<int32_t> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&parent](int32_t v) {
    while (parent[static_cast<size_t>(v)] != v) {
      parent[static_cast<size_t>(v)] =
          parent[static_cast<size_t>(parent[static_cast<size_t>(v)])];
      v = parent[static_cast<size_t>(v)];
    }
    return v;
  };
  for (const SharingEdge& edge : graph_.edges) {
    int32_t a = find(edge.source);
    int32_t b = find(edge.target);
    if (a != b) parent[static_cast<size_t>(a)] = b;
  }
  std::vector<char> affected_root(n, 0);
  for (size_t v = 0; v < n; ++v) {
    if (touched[v]) affected_root[static_cast<size_t>(find(int32_t(v)))] = 1;
  }

  auto pinned = [this](int32_t v) {
    return decision_.choice[static_cast<size_t>(v)] != kNodeNotSelected;
  };

  // Remapped regional DSMT instance. Pinned nodes (already running) become
  // zero-cost terminals with no incoming edges: the solver must keep them
  // (their matcher state is live) and pays nothing for them, which is
  // exactly their marginal cost; new work may branch off their output.
  SharingGraph sub;
  std::vector<int32_t> region;
  std::vector<int32_t> local(n, -1);
  size_t pinned_count = 0;
  for (size_t v = 0; v < n; ++v) {
    if (!affected_root[static_cast<size_t>(find(int32_t(v)))]) continue;
    local[v] = static_cast<int32_t>(region.size());
    region.push_back(static_cast<int32_t>(v));
    SharingNode node = graph_.nodes[v];
    if (pinned(static_cast<int32_t>(v))) {
      node.terminal = true;
      node.scratch_cost = 0.0;
      ++pinned_count;
    }
    sub.index[node.key] = local[v];
    sub.nodes.push_back(std::move(node));
  }
  std::vector<int32_t> sub_edge_global;
  for (size_t e = 0; e < graph_.edges.size(); ++e) {
    const SharingEdge& edge = graph_.edges[e];
    if (local[static_cast<size_t>(edge.source)] < 0 ||
        local[static_cast<size_t>(edge.target)] < 0) {
      continue;
    }
    if (pinned(edge.target)) continue;  // Incumbent recipes never change.
    SharingEdge copy = edge;
    copy.source = local[static_cast<size_t>(edge.source)];
    copy.target = local[static_cast<size_t>(edge.target)];
    sub.edges.push_back(copy);
    sub_edge_global.push_back(static_cast<int32_t>(e));
  }

  PlannerOptions planner_options = options_.planner;
  planner_options.probe = options_.probe;
  PlanDecision sub_decision = SelectPlan(sub, planner_options);

  for (int32_t g : region) {
    if (pinned(g)) continue;
    int32_t c = sub_decision.choice[static_cast<size_t>(local[g])];
    decision_.choice[static_cast<size_t>(g)] =
        c >= 0 ? sub_edge_global[static_cast<size_t>(c)] : c;
  }
  MOTTO_ASSIGN_OR_RETURN(double cost, ValidateDecision(graph_, decision_));
  decision_.cost = cost;
  decision_.exact = decision_.exact && sub_decision.exact;
  decision_.solve_seconds += sub_decision.solve_seconds;

  ReoptimizeStats stats;
  stats.graph_nodes = n;
  stats.graph_edges = graph_.edges.size();
  stats.region_nodes = region.size();
  stats.pinned_nodes = pinned_count;
  stats.free_nodes = region.size() - pinned_count;
  stats.solve_seconds = sub_decision.solve_seconds;
  stats.exact = sub_decision.exact;
  stats.plan_cost = cost;
  return stats;
}

Result<ReoptimizeStats> WorkloadSession::RemoveQuery(const std::string& name) {
  if (!initialized_) {
    return InternalError("WorkloadSession is not initialized");
  }
  auto it = query_chains_.find(name);
  if (it == query_chains_.end()) {
    return InvalidArgumentError("unknown query '" + name + "'");
  }
  for (const std::string& flat : it->second) {
    auto fn = flat_node_.find(flat);
    if (fn == flat_node_.end()) {
      return InternalError("churn: flat query '" + flat + "' has no node");
    }
    int32_t v = fn->second;
    std::set<std::string>& owners = terminal_owners_[v];
    owners.erase(flat);
    SharingNode& node = graph_.nodes[static_cast<size_t>(v)];
    node.query_names.erase(
        std::remove(node.query_names.begin(), node.query_names.end(), flat),
        node.query_names.end());
    if (owners.empty()) {
      node.terminal = false;
      terminal_owners_.erase(v);
    }
    flat_node_.erase(fn);
  }
  query_chains_.erase(it);

  // Prune, never re-solve: deselect every node no longer on a chosen path
  // to a surviving terminal. Survivors keep their recipes, so their
  // physical operators (and live state) carry over unchanged.
  const size_t n = graph_.nodes.size();
  std::vector<char> needed(n, 0);
  std::vector<int32_t> stack;
  for (size_t v = 0; v < n; ++v) {
    if (graph_.nodes[v].terminal &&
        decision_.choice[v] != kNodeNotSelected) {
      needed[v] = 1;
      stack.push_back(static_cast<int32_t>(v));
    }
  }
  while (!stack.empty()) {
    int32_t v = stack.back();
    stack.pop_back();
    int32_t c = decision_.choice[static_cast<size_t>(v)];
    if (c >= 0) {
      int32_t s = graph_.edges[static_cast<size_t>(c)].source;
      if (!needed[static_cast<size_t>(s)]) {
        needed[static_cast<size_t>(s)] = 1;
        stack.push_back(s);
      }
    }
  }
  for (size_t v = 0; v < n; ++v) {
    if (!needed[v]) decision_.choice[v] = kNodeNotSelected;
  }
  MOTTO_ASSIGN_OR_RETURN(double cost, ValidateDecision(graph_, decision_));
  decision_.cost = cost;

  ReoptimizeStats stats;
  stats.added = false;
  stats.query = name;
  stats.graph_nodes = n;
  stats.graph_edges = graph_.edges.size();
  stats.exact = decision_.exact;
  stats.plan_cost = cost;
  MOTTO_RETURN_IF_ERROR(Rebuild());
  return stats;
}

bool WorkloadSession::HasQuery(const std::string& name) const {
  return query_chains_.count(name) > 0;
}

std::vector<std::string> WorkloadSession::QueryNames() const {
  std::vector<std::string> names;
  names.reserve(query_chains_.size());
  for (const auto& [name, chain] : query_chains_) names.push_back(name);
  return names;
}

std::vector<std::string> WorkloadSession::PhysicalKeys() const {
  std::vector<std::string> keys;
  keys.reserve(jqp_.nodes.size());
  for (size_t i = 0; i < jqp_.nodes.size(); ++i) {
    PlanNodeOrigin origin;
    if (i < provenance_.nodes.size()) origin = provenance_.nodes[i];
    std::string key;
    if (origin.sharing_node < 0) {
      // Outside the sharing plan (cannot happen under kMotto, where every
      // node is provenance-tracked); fall back to the display label.
      key = "unshared|";
      key += jqp_.NodeLabel(static_cast<int32_t>(i));
    } else {
      key = graph_.nodes[static_cast<size_t>(origin.sharing_node)].key;
      key += '|';
      key += PlanNodeRoleName(origin.role);
      if (origin.edge < 0) {
        key += "|ground";
      } else {
        // Identify the realization by the edge's content, not its index:
        // recipes are immutable once chosen, so the same (target, kind,
        // source, covered) means the same physical operator in any epoch.
        const SharingEdge& edge =
            graph_.edges[static_cast<size_t>(origin.edge)];
        key += '|';
        key += RecipeKindName(edge.recipe.kind);
        key += "|src=";
        key += graph_.nodes[static_cast<size_t>(edge.source)].key;
        key += "|cov=";
        for (int32_t c : edge.recipe.covered) {
          key += std::to_string(c);
          key += ',';
        }
      }
    }
    keys.push_back(std::move(key));
  }
  return keys;
}

Status WorkloadSession::Rebuild() {
  provenance_ = PlanProvenance{};
  MOTTO_ASSIGN_OR_RETURN(
      Jqp jqp, BuildJqp(graph_, decision_, catalog_, registry_, &provenance_));
  provenance_.nodes.resize(jqp.nodes.size());
  eval_orders_ = AnnotateEvalOrders(
      &jqp, stats_,
      CalibrationMultipliers(jqp, provenance_, graph_, options_.calibration));
  jqp_ = std::move(jqp);
  return Status::Ok();
}

namespace {

/// Builds an executor for the session's current plan with per-sink add-point
/// horizons: each sink inherits the birth timestamp of its user query
/// (inner "#in" sinks follow their outer query).
Result<Executor> MakeEpochExecutor(
    const WorkloadSession& session,
    const std::map<std::string, Timestamp>& birth) {
  MOTTO_ASSIGN_OR_RETURN(Executor executor, Executor::Create(session.jqp()));
  std::vector<Timestamp> horizons;
  horizons.reserve(session.jqp().sinks.size());
  bool any = false;
  for (const Jqp::Sink& sink : session.jqp().sinks) {
    Timestamp h = kAlwaysLive;
    auto it = birth.find(UserQueryOf(sink.query_name));
    if (it != birth.end()) h = it->second;
    if (h != kAlwaysLive) any = true;
    horizons.push_back(h);
  }
  executor.SetSinkBeginHorizons(any ? std::move(horizons)
                                    : std::vector<Timestamp>{});
  return executor;
}

void MergeSegment(RunResult&& segment, RunResult* merged) {
  merged->raw_events += segment.raw_events;
  merged->elapsed_seconds += segment.elapsed_seconds;
  for (auto& [name, events] : segment.sink_events) {
    std::vector<Event>& out = merged->sink_events[name];
    out.insert(out.end(), std::make_move_iterator(events.begin()),
               std::make_move_iterator(events.end()));
  }
  for (const auto& [name, count] : segment.sink_counts) {
    merged->sink_counts[name] += count;
  }
}

void ExportChurnMetrics(const ChurnOutcome& outcome,
                        obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) return;
  metrics->GetCounter("churn.swaps")->Add(outcome.migration.swaps);
  metrics->GetCounter("churn.nodes_kept")->Add(outcome.migration.nodes_kept);
  metrics->GetCounter("churn.nodes_new")->Add(outcome.migration.nodes_new);
  metrics->GetCounter("churn.nodes_dropped")
      ->Add(outcome.migration.nodes_dropped);
  metrics->GetCounter("churn.imports_failed")
      ->Add(outcome.migration.imports_failed);
  metrics->GetCounter("churn.partials_transferred")
      ->Add(outcome.migration.partials_transferred);
  metrics->GetCounter("churn.pending_transferred")
      ->Add(outcome.migration.pending_transferred);
  metrics->GetCounter("churn.buffered_transferred")
      ->Add(outcome.migration.buffered_transferred);
  metrics->GetCounter("churn.reoptimizations")
      ->Add(outcome.reoptimizations.size());
  for (const ReoptimizeStats& r : outcome.reoptimizations) {
    metrics->GetCounter("churn.resolve_region_nodes")->Add(r.region_nodes);
    metrics->GetCounter("churn.resolve_free_nodes")->Add(r.free_nodes);
  }
}

}  // namespace

Result<ChurnOutcome> RunChurn(const std::vector<Query>& initial,
                              const ChurnScript& script,
                              const EventStream& stream,
                              EventTypeRegistry* registry,
                              const OptimizerOptions& optimizer_options,
                              const ChurnRunOptions& run_options) {
  MOTTO_RETURN_IF_ERROR(ValidateStream(stream));
  for (size_t i = 1; i < script.commands.size(); ++i) {
    if (script.commands[i].ts < script.commands[i - 1].ts) {
      return InvalidArgumentError(
          "churn script timestamps must be nondecreasing");
    }
  }

  StreamStats stats = ComputeStats(stream);
  WorkloadSession session(registry, stats, optimizer_options);
  MOTTO_RETURN_IF_ERROR(session.Initialize(initial));

  ChurnOutcome outcome;
  std::map<std::string, Timestamp> birth;
  for (const Query& query : initial) {
    outcome.windows[query.name] = {kAlwaysLive, kNeverRemoved};
    birth[query.name] = kAlwaysLive;
  }

  MOTTO_ASSIGN_OR_RETURN(Executor executor,
                         MakeEpochExecutor(session, birth));
  executor.BeginSession(run_options.executor);

  size_t pos = 0;
  size_t ci = 0;
  while (ci < script.commands.size()) {
    const Timestamp boundary = script.commands[ci].ts;

    // Feed everything strictly before the swap point, then flush so every
    // match sealed before it is emitted by the outgoing plan. Removed
    // queries thereby finish their history exactly; surviving nodes defer
    // the rest via exported state.
    size_t start = pos;
    while (pos < stream.size() && stream[pos].begin() < boundary) ++pos;
    executor.FeedSession(stream.data() + start, pos - start);
    executor.FlushSessionAt(boundary);

    std::vector<std::string> old_keys = session.PhysicalKeys();
    MergeSegment(executor.SuspendSession(), &outcome.result);
    std::unordered_map<std::string, NodeState> exported;
    for (size_t i = 0; i < old_keys.size(); ++i) {
      NodeState state;
      executor.runtime(static_cast<int32_t>(i))->ExportState(&state);
      exported.emplace(old_keys[i], std::move(state));
    }

    // Apply every command scheduled at this swap point.
    while (ci < script.commands.size() &&
           script.commands[ci].ts == boundary) {
      const ChurnCommand& cmd = script.commands[ci];
      if (cmd.add) {
        MOTTO_ASSIGN_OR_RETURN(ReoptimizeStats stats_one,
                               session.AddQuery(cmd.query));
        outcome.reoptimizations.push_back(std::move(stats_one));
        birth[cmd.name] = boundary;
        outcome.windows[cmd.name] = {boundary, kNeverRemoved};
      } else {
        MOTTO_ASSIGN_OR_RETURN(ReoptimizeStats stats_one,
                               session.RemoveQuery(cmd.name));
        outcome.reoptimizations.push_back(std::move(stats_one));
        birth.erase(cmd.name);
        outcome.windows[cmd.name].second = boundary;
      }
      ++ci;
    }

    // Hot swap: surviving physical nodes import their state, everything
    // else starts fresh behind the new sinks' begin horizons.
    MOTTO_ASSIGN_OR_RETURN(Executor next, MakeEpochExecutor(session, birth));
    next.BeginSession(run_options.executor);
    std::vector<std::string> new_keys = session.PhysicalKeys();
    ++outcome.migration.swaps;
    std::unordered_set<std::string> claimed;
    for (size_t i = 0; i < new_keys.size(); ++i) {
      auto it = exported.find(new_keys[i]);
      if (it == exported.end()) {
        ++outcome.migration.nodes_new;
        continue;
      }
      const NodeState& state = it->second;
      claimed.insert(new_keys[i]);
      if (next.runtime(static_cast<int32_t>(i))->ImportState(state)) {
        ++outcome.migration.nodes_kept;
        outcome.migration.partials_transferred +=
            state.partials.size() + state.lazy_partials.size();
        outcome.migration.pending_transferred += state.pending.size();
        outcome.migration.buffered_transferred += state.buffered.size();
      } else {
        ++outcome.migration.imports_failed;
        ++outcome.migration.nodes_new;
      }
    }
    for (const auto& [key, state] : exported) {
      if (!claimed.count(key)) ++outcome.migration.nodes_dropped;
    }
    executor = std::move(next);
  }

  executor.FeedSession(stream.data() + pos, stream.size() - pos);
  MergeSegment(executor.FinishSession(), &outcome.result);

  ExportChurnMetrics(outcome, run_options.executor.metrics);
  return outcome;
}

}  // namespace motto
