#ifndef MOTTO_MOTTO_CATALOG_H_
#define MOTTO_MOTTO_CATALOG_H_

#include <unordered_map>
#include <vector>

#include "ccl/pattern.h"
#include "ccl/predicate.h"
#include "common/time.h"
#include "event/event_type.h"

namespace motto {

/// Tracks which (flat pattern, window) produces each composite event type,
/// and derived properties the rewriter and plan builder need: the slot-space
/// size of emitted composites (arity) and the event types that actually flow
/// on a producer's output (DISJ passes its inputs through, everything else
/// emits its composite type).
class CompositeCatalog {
 public:
  struct Info {
    FlatPattern pattern;
    Duration window = 0;
  };

  /// A selector: a primitive event type restricted by a payload predicate
  /// (`AAPL[value > 100]`), interned as its own operand symbol so the
  /// sharing machinery treats equal selections as equal operands.
  struct SelectorInfo {
    EventTypeId base = kInvalidEventType;
    Predicate predicate;
  };

  /// Registers (or finds) the composite type for (pattern, window) and
  /// records its provenance. Windows of DISJ patterns are normalized to 0 in
  /// the descriptor (pass-through semantics make them window-free).
  EventTypeId Register(const FlatPattern& pattern, Duration window,
                       EventTypeRegistry* registry);

  /// Provenance of a composite type, or nullptr for unknown/primitive ids.
  const Info* Find(EventTypeId type) const;

  /// Registers (or finds) the selector symbol for (base, predicate).
  /// `predicate` must be non-empty and `base` primitive.
  EventTypeId RegisterSelector(EventTypeId base, const Predicate& predicate,
                               EventTypeRegistry* registry);

  /// Selector info, or nullptr when `type` is not a selector.
  const SelectorInfo* FindSelector(EventTypeId type) const;

  /// Slot-space size of events carrying `type`: 1 for primitives; for
  /// composites, the sum (max for DISJ) of operand arities.
  int32_t ArityOf(EventTypeId type, const EventTypeRegistry& registry) const;

  /// Event types observed on the output of the producer of `type`:
  /// {type} itself for primitives and non-DISJ composites; for DISJ, the
  /// union of its operands' accepted types (pass-through).
  std::vector<EventTypeId> AcceptedTypes(
      EventTypeId type, const EventTypeRegistry& registry) const;

 private:
  std::unordered_map<EventTypeId, Info> infos_;
  std::unordered_map<EventTypeId, SelectorInfo> selectors_;
};

}  // namespace motto

#endif  // MOTTO_MOTTO_CATALOG_H_
