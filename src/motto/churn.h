#ifndef MOTTO_MOTTO_CHURN_H_
#define MOTTO_MOTTO_CHURN_H_

#include <cstdint>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ccl/pattern.h"
#include "common/result.h"
#include "common/time.h"
#include "cost/cost_model.h"
#include "engine/executor.h"
#include "event/stream.h"
#include "motto/catalog.h"
#include "motto/optimizer.h"
#include "motto/sharing_graph.h"
#include "planner/plan_builder.h"
#include "planner/solver.h"

namespace motto {

/// Online query churn (DESIGN.md §14): incremental re-optimization of a live
/// MQO workload plus state-preserving hot swap of the running plan.

/// One scripted workload change. The swap takes effect at `ts`: it is
/// applied after every stream event with timestamp < ts and before the
/// first event with timestamp >= ts.
struct ChurnCommand {
  Timestamp ts = 0;
  bool add = true;
  std::string name;
  /// Filled for add commands.
  Query query;
};

struct ChurnScript {
  std::vector<ChurnCommand> commands;
};

/// Parses a churn script. One command per non-empty line; '#' starts a
/// comment. Formats (timestamps in microseconds, nondecreasing):
///
///   <ts> add <name>: <CCL query>
///   <ts> remove <name>
///
/// e.g. "120 add spike: SELECT * FROM t MATCHING [10 s : SEQ(A, B)]".
Result<ChurnScript> ParseChurnScript(const std::string& text,
                                     EventTypeRegistry* registry);
Result<ChurnScript> LoadChurnScript(const std::string& path,
                                    EventTypeRegistry* registry);

/// Telemetry of one incremental re-plan (one AddQuery / RemoveQuery).
struct ReoptimizeStats {
  bool added = false;
  std::string query;
  /// Whole sharing graph after the change.
  size_t graph_nodes = 0;
  size_t graph_edges = 0;
  /// The re-solved region: every connected component containing a node the
  /// change created or touched. Removals never re-solve (region 0).
  size_t region_nodes = 0;
  /// Region nodes pinned to their incumbent recipe (already-running
  /// operators, modeled at zero marginal cost).
  size_t pinned_nodes = 0;
  /// Region nodes the solver actually decided.
  size_t free_nodes = 0;
  double solve_seconds = 0.0;
  bool exact = true;
  /// Validated cost-model cost of the composed full decision.
  double plan_cost = 0.0;
};

/// Aggregate live-migration counters across the hot swaps of a churn run.
struct MigrationStats {
  size_t swaps = 0;
  /// Physical plan nodes whose state survived into the next plan.
  size_t nodes_kept = 0;
  /// Nodes of a new plan started fresh (no predecessor with the same
  /// physical identity).
  size_t nodes_new = 0;
  /// Old physical nodes with no successor (their state was discarded).
  size_t nodes_dropped = 0;
  /// Snapshots rejected by ImportState (counted, then fresh-started).
  size_t imports_failed = 0;
  size_t partials_transferred = 0;
  size_t pending_transferred = 0;
  size_t buffered_transferred = 0;
};

/// A live MQO workload: owns the sharing graph, the incumbent DSMT decision
/// and the built JQP, and applies AddQuery / RemoveQuery incrementally.
///
/// Invariants (the migration protocol depends on them):
///   - graph node/edge storage is append-only (ExtendSharingGraph);
///   - nodes already selected keep their incumbent recipe forever: adds pin
///     them during the regional re-solve, removals only deselect;
///   - therefore every surviving jqp node reappears under the same
///     PhysicalKeys() entry after a rebuild, which is what keys the state
///     handoff in RunChurn.
///
/// Requires OptimizerMode::kMotto: the incremental rewriter re-entry is only
/// equivalent to a from-scratch build when all techniques are enabled
/// (restricted modes gate edge enumeration on terminal flags, which churn
/// flips).
class WorkloadSession {
 public:
  /// `registry` must outlive the session; `stats` describe the stream the
  /// cost model plans against.
  WorkloadSession(EventTypeRegistry* registry, StreamStats stats,
                  OptimizerOptions options = OptimizerOptions{});

  /// Full initial optimization of `queries` (equivalent to
  /// Optimizer::Optimize under the same options).
  Status Initialize(const std::vector<Query>& queries);

  /// Adds one query: divides it, extends the sharing graph in place, and
  /// re-solves only the affected region — the connected components
  /// containing a new or touched node — with every already-selected node
  /// pinned. Untouched components keep their incumbent choices verbatim.
  Result<ReoptimizeStats> AddQuery(const Query& query);

  /// Removes one query: drops its terminal obligations and deselects every
  /// node no longer reachable from a surviving terminal through the chosen
  /// recipes. Never re-solves, so surviving queries keep their plan shape.
  Result<ReoptimizeStats> RemoveQuery(const std::string& name);

  bool HasQuery(const std::string& name) const;
  std::vector<std::string> QueryNames() const;

  const Jqp& jqp() const { return jqp_; }
  const SharingGraph& graph() const { return graph_; }
  const PlanDecision& decision() const { return decision_; }
  const PlanProvenance& provenance() const { return provenance_; }

  /// Stable physical identity of every jqp node, parallel to jqp().nodes:
  /// the sharing-node key plus the node's role and (for recipe realizations)
  /// the recipe kind, source key and covered set. Equal keys across rebuilds
  /// mean "the same physical operator", so its matcher state may be carried
  /// over a plan swap.
  std::vector<std::string> PhysicalKeys() const;

 private:
  Status RegisterChain(const std::string& user_name,
                       const std::vector<FlatQuery>& chain);
  /// Regional re-solve: components containing a marked node are re-decided
  /// with already-selected nodes pinned; everything else keeps its choice.
  Result<ReoptimizeStats> SolveTouchedRegion(const std::vector<char>& touched);
  /// Rebuilds jqp_/provenance_ from graph_ + decision_ and re-annotates
  /// evaluation orders.
  Status Rebuild();

  EventTypeRegistry* registry_;
  StreamStats stats_;
  OptimizerOptions options_;
  CostModel cost_model_;
  CompositeCatalog catalog_;
  SharingGraph graph_;
  PlanDecision decision_;
  Jqp jqp_;
  PlanProvenance provenance_;
  std::vector<OrderPlan> eval_orders_;
  bool initialized_ = false;
  /// User query name -> its divided chain's flat-query names (inner first).
  std::map<std::string, std::vector<std::string>> query_chains_;
  /// Flat query name -> graph node answering it.
  std::unordered_map<std::string, int32_t> flat_node_;
  /// Graph node -> flat names requiring it as a terminal.
  std::unordered_map<int32_t, std::set<std::string>> terminal_owners_;
};

struct ChurnRunOptions {
  /// Per-epoch executor settings (eval order, metrics, tracing...).
  ExecutorOptions executor;
};

/// A query's live window within a churn run: [first, second). `first` is
/// kAlwaysLive for initial queries; `second` is kNeverRemoved for queries
/// still live at end of stream.
inline constexpr Timestamp kAlwaysLive = std::numeric_limits<Timestamp>::min();
inline constexpr Timestamp kNeverRemoved = std::numeric_limits<Timestamp>::max();

struct ChurnOutcome {
  /// Merged across all plan epochs: per-sink match multisets, raw counts,
  /// elapsed time summed.
  RunResult result;
  std::vector<ReoptimizeStats> reoptimizations;
  MigrationStats migration;
  /// Live window per user query (see kAlwaysLive / kNeverRemoved).
  std::map<std::string, std::pair<Timestamp, Timestamp>> windows;
};

/// Replays `stream` against the `initial` workload while applying `script`:
/// at each command timestamp T the running plan is flushed at watermark T
/// (emitting every match already sealed before T), its matcher state is
/// exported, the workload is re-optimized incrementally, and a new executor
/// picks up — surviving physical nodes import their state, new nodes start
/// fresh with a sink-level begin horizon of T, so
///   - surviving queries see the exact match multiset an uninterrupted run
///     would produce,
///   - an added query emits exactly the matches built only from events
///     arriving at or after its add point,
///   - a removed query emits exactly its matches sealed before its remove
///     point, and nothing after.
/// Requires OptimizerMode::kMotto (see WorkloadSession).
Result<ChurnOutcome> RunChurn(const std::vector<Query>& initial,
                              const ChurnScript& script,
                              const EventStream& stream,
                              EventTypeRegistry* registry,
                              const OptimizerOptions& optimizer_options,
                              const ChurnRunOptions& run_options =
                                  ChurnRunOptions{});

/// Maps a flat (divided) sink name back to its user query: strips the
/// "#in<k>" suffixes DivideNested appends to inner sub-queries.
std::string UserQueryOf(std::string_view sink_name);

}  // namespace motto

#endif  // MOTTO_MOTTO_CHURN_H_
