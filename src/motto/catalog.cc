#include "motto/catalog.h"

#include <algorithm>

#include "common/check.h"
#include "engine/plan_util.h"

namespace motto {

EventTypeId CompositeCatalog::Register(const FlatPattern& pattern,
                                       Duration window,
                                       EventTypeRegistry* registry) {
  Duration effective = pattern.op == PatternOp::kDisj ? 0 : window;
  EventTypeId type = RegisterOutputType(pattern, effective, registry);
  auto it = infos_.find(type);
  if (it == infos_.end()) {
    infos_.emplace(type, Info{pattern.Canonical(), effective});
  }
  return type;
}

const CompositeCatalog::Info* CompositeCatalog::Find(EventTypeId type) const {
  auto it = infos_.find(type);
  return it == infos_.end() ? nullptr : &it->second;
}

EventTypeId CompositeCatalog::RegisterSelector(EventTypeId base,
                                               const Predicate& predicate,
                                               EventTypeRegistry* registry) {
  MOTTO_CHECK(registry->IsPrimitive(base))
      << "selector base must be a primitive type";
  MOTTO_CHECK(!predicate.empty()) << "selector needs a predicate";
  std::string descriptor =
      registry->NameOf(base) + "[" + predicate.CanonicalKey() + "]";
  EventTypeId id = registry->RegisterComposite(descriptor);
  auto it = selectors_.find(id);
  if (it == selectors_.end()) {
    selectors_.emplace(id, SelectorInfo{base, predicate});
  }
  return id;
}

const CompositeCatalog::SelectorInfo* CompositeCatalog::FindSelector(
    EventTypeId type) const {
  auto it = selectors_.find(type);
  return it == selectors_.end() ? nullptr : &it->second;
}

int32_t CompositeCatalog::ArityOf(EventTypeId type,
                                  const EventTypeRegistry& registry) const {
  if (registry.IsPrimitive(type)) return 1;
  if (FindSelector(type) != nullptr) return 1;
  const Info* info = Find(type);
  MOTTO_CHECK(info != nullptr) << "unknown composite type "
                               << registry.NameOf(type);
  if (info->pattern.op == PatternOp::kDisj) {
    int32_t arity = 1;
    for (EventTypeId operand : info->pattern.operands) {
      arity = std::max(arity, ArityOf(operand, registry));
    }
    return arity;
  }
  int32_t arity = 0;
  for (EventTypeId operand : info->pattern.operands) {
    arity += ArityOf(operand, registry);
  }
  return arity;
}

std::vector<EventTypeId> CompositeCatalog::AcceptedTypes(
    EventTypeId type, const EventTypeRegistry& registry) const {
  if (registry.IsPrimitive(type)) return {type};
  if (const SelectorInfo* selector = FindSelector(type)) {
    return {selector->base};
  }
  const Info* info = Find(type);
  MOTTO_CHECK(info != nullptr) << "unknown composite type "
                               << registry.NameOf(type);
  if (info->pattern.op != PatternOp::kDisj) return {type};
  std::vector<EventTypeId> out;
  for (EventTypeId operand : info->pattern.operands) {
    std::vector<EventTypeId> accepted = AcceptedTypes(operand, registry);
    out.insert(out.end(), accepted.begin(), accepted.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace motto
