#ifndef MOTTO_MOTTO_NESTED_H_
#define MOTTO_MOTTO_NESTED_H_

#include <vector>

#include "ccl/pattern.h"
#include "common/result.h"
#include "motto/catalog.h"

namespace motto {

/// Divides a (possibly nested) pattern query into a chain of flat
/// sub-queries (paper §IV-D): every non-leaf child becomes its own inner
/// sub-query whose composite output type replaces it in the parent's operand
/// list, working inside-out. The returned chain lists inner sub-queries
/// before the queries that consume them; the last entry answers `query`.
///
/// Inner sub-queries inherit the outer window. NEG is only permitted on the
/// outermost layer (inner negation would require non-terminal deferred
/// emission, which the engine rejects).
Result<std::vector<FlatQuery>> DivideNested(const Query& query,
                                            EventTypeRegistry* registry,
                                            CompositeCatalog* catalog);

/// Divides every query of a workload, concatenating the chains in order.
Result<std::vector<FlatQuery>> DivideWorkload(const std::vector<Query>& queries,
                                              EventTypeRegistry* registry,
                                              CompositeCatalog* catalog);

}  // namespace motto

#endif  // MOTTO_MOTTO_NESTED_H_
