#ifndef MOTTO_MOTTO_REWRITER_H_
#define MOTTO_MOTTO_REWRITER_H_

#include <vector>

#include "ccl/pattern.h"
#include "cost/cost_model.h"
#include "motto/catalog.h"
#include "motto/sharing_graph.h"

namespace motto::obs {
struct OptimizerProbe;
}  // namespace motto::obs

namespace motto {

/// Which sharing techniques the rewriter may apply; the presets correspond
/// to the paper's comparison approaches (§VII-A).
struct RewriterOptions {
  bool enable_mst = true;  // Whole-query merge sharing (§IV-A).
  bool enable_dst = true;  // Decomposition sharing via sub-queries (§IV-B).
  bool enable_ott = true;  // Operator transformation (§IV-C).
  /// Allow sharing across different window constraints via span filters and
  /// window extension (§IV-D). When false, only same-window pairs share.
  bool enable_windows = true;
  /// LCSE baseline: per query pair, only the longest common substring
  /// becomes a shared sub-query.
  bool lcse_only = false;
  /// Drop sharing edges whose modeled cost is not clearly below the
  /// beneficiary's from-scratch cost (margin in rewriter.cc). Disable to
  /// expose every applicable rewrite, e.g. for mechanism tests.
  bool prune_unprofitable = true;
  /// Safety caps.
  size_t max_nodes = 4000;
  size_t max_chains_per_pair = 8;
  size_t max_occurrence_edges = 2;
  /// Optional observability sink (obs/opt_trace.h): when set, the rewriter
  /// records every candidate edge with its accept/reject reason plus the
  /// coarse per-pair skip counters. Null costs one pointer test per site.
  obs::OptimizerProbe* probe = nullptr;

  static RewriterOptions Motto() { return RewriterOptions{}; }
  static RewriterOptions MstOnly() {
    RewriterOptions o;
    o.enable_dst = false;
    o.enable_ott = false;
    o.enable_windows = false;
    return o;
  }
  static RewriterOptions Lcse() {
    RewriterOptions o;
    o.enable_mst = false;
    o.enable_ott = false;
    o.enable_windows = false;
    o.lcse_only = true;
    return o;
  }
  static RewriterOptions None() {
    RewriterOptions o;
    o.enable_mst = false;
    o.enable_dst = false;
    o.enable_ott = false;
    o.enable_windows = false;
    return o;
  }
};

/// Builds the DSMT sharing graph for a divided (flat) workload: nodes for
/// every user query plus every interesting sub-query discovered by
/// MST/DST/OTT, and cost-weighted edges for every applicable rewrite.
SharingGraph BuildSharingGraph(const std::vector<FlatQuery>& queries,
                               const RewriterOptions& options,
                               EventTypeRegistry* registry,
                               CompositeCatalog* catalog,
                               CostModel* cost_model);

/// Outcome of ExtendSharingGraph. Node and edge storage is append-only, so
/// everything at or past the recorded marks was created by the call.
struct SharingGraphExtension {
  /// Nodes [first_new_node, graph.nodes.size()) are new.
  size_t first_new_node = 0;
  /// Edges [first_new_edge, graph.edges.size()) are new.
  size_t first_new_edge = 0;
  /// Pre-existing nodes an added query deduplicated onto (their terminal
  /// flag / query_names changed; their recipe-relevant fields did not).
  std::vector<int32_t> touched_existing;
};

/// Incremental rewriter re-entry for online churn (DESIGN.md §14): adds the
/// `added` flat queries to an existing sharing graph in place. Existing
/// nodes and edges are never removed or reordered — new terminals are
/// appended, the DST sub-query search runs only over pairs involving a new
/// node, and edge enumeration is restricted to pairs with at least one new
/// endpoint. Under the full-MOTTO RewriterOptions this yields exactly the
/// graph a from-scratch build over the union workload would (modulo node /
/// edge order): old-old pairs were already enumerated when the graph was
/// first built, and the enabled-technique gates do not depend on the
/// terminal flags an added query may flip.
SharingGraphExtension ExtendSharingGraph(SharingGraph* graph,
                                         const std::vector<FlatQuery>& added,
                                         const RewriterOptions& options,
                                         EventTypeRegistry* registry,
                                         CompositeCatalog* catalog,
                                         CostModel* cost_model);

/// Cost/output estimate for a flat pattern whose operands may be composite
/// types: composite operand rates are resolved recursively through the
/// catalog and memoized into the cost model.
OperatorEstimate EstimateFlatPattern(const FlatPattern& pattern,
                                     Duration window,
                                     const CompositeCatalog& catalog,
                                     const EventTypeRegistry& registry,
                                     CostModel* cost_model);

}  // namespace motto

#endif  // MOTTO_MOTTO_REWRITER_H_
