#ifndef MOTTO_MOTTO_OPTIMIZER_H_
#define MOTTO_MOTTO_OPTIMIZER_H_

#include <string>
#include <utility>
#include <vector>

#include "ccl/pattern.h"
#include "common/result.h"
#include "cost/cost_model.h"
#include "engine/graph.h"
#include "motto/catalog.h"
#include "motto/rewriter.h"
#include "motto/sharing_graph.h"
#include "planner/plan_builder.h"
#include "planner/solver.h"

namespace motto {

/// Sharing strategy (the paper's comparison approaches, §VII-A).
enum class OptimizerMode {
  kNa,     // Baseline: every query independent.
  kMst,    // Whole-query merge sharing only [10].
  kLcse,   // Longest common sub-expression sharing [13,14,15].
  kMotto,  // Full MOTTO: MST + DST + OTT + nested + window handling.
};

std::string_view OptimizerModeName(OptimizerMode mode);

struct OptimizerOptions {
  OptimizerMode mode = OptimizerMode::kMotto;
  PlannerOptions planner;
  /// Optional observability sink (obs/opt_trace.h), threaded into both the
  /// rewriter and the planner. Null: no recording, no overhead.
  obs::OptimizerProbe* probe = nullptr;
  /// Per-family cost calibration: measured/predicted miss ratios from a
  /// prior `motto calibrate` run (families as in obs::CalibrationRow, e.g.
  /// {"DST", 0.73}). Fed into evaluation-order planning, where each node
  /// gets the multiplier of its provenance family; unknown families are
  /// ignored, absent families default to 1.0.
  std::vector<std::pair<std::string, double>> calibration;
};

/// Everything produced by one optimization run.
struct OptimizeOutcome {
  Jqp jqp;
  SharingGraph sharing_graph;
  PlanDecision decision;
  /// Cost-model cost of the chosen plan vs the unshared default.
  double planned_cost = 0.0;
  double default_cost = 0.0;
  /// Wall time spent in the rewriter and planner.
  double rewrite_seconds = 0.0;
  double plan_seconds = 0.0;
  bool exact = false;
  size_t num_flat_queries = 0;
  /// Per-jqp-node sharing provenance, parallel to jqp.nodes. Nodes appended
  /// outside the sharing plan (NA baseline, opaque nested chains) carry the
  /// default origin (sharing_node = -1).
  PlanProvenance provenance;
  /// Per-jqp-node evaluation-order plans (AnnotateEvalOrders), parallel to
  /// jqp.nodes; the chosen orders are already installed in each pattern
  /// node's PatternSpec::eval_order and take effect when a run uses
  /// ExecutorOptions::eval_order = kSelectivity.
  std::vector<OrderPlan> eval_orders;
};

/// Per-node calibration multipliers for evaluation-order planning: each
/// node maps to its provenance family (same classification as the
/// calibration report in obs/explain.cc) and picks up that family's
/// measured/predicted miss ratio from the user-supplied spec. Nodes of
/// families not in the spec keep 1.0. Shared by the optimizer and the
/// online-churn session (motto/churn.h), which re-annotates eval orders
/// after every incremental re-plan.
std::vector<double> CalibrationMultipliers(
    const Jqp& jqp, const PlanProvenance& provenance,
    const SharingGraph& graph,
    const std::vector<std::pair<std::string, double>>& calibration);

/// MOTTO's front door: divides (possibly nested) queries, discovers sharing,
/// solves the DSMT instance, and materializes the jumbo query plan.
class Optimizer {
 public:
  /// `registry` must outlive the optimizer; `stats` describe the target
  /// stream (the cost model input).
  Optimizer(EventTypeRegistry* registry, StreamStats stats,
            OptimizerOptions options = OptimizerOptions{});

  Result<OptimizeOutcome> Optimize(const std::vector<Query>& queries);

  /// Convenience: optimizes already-flat queries.
  Result<OptimizeOutcome> OptimizeFlat(const std::vector<FlatQuery>& queries);

 private:
  Result<OptimizeOutcome> OptimizeDivided(
      const std::vector<std::vector<FlatQuery>>& chains,
      CompositeCatalog catalog);

  EventTypeRegistry* registry_;
  StreamStats stats_;
  OptimizerOptions options_;
};

}  // namespace motto

#endif  // MOTTO_MOTTO_OPTIMIZER_H_
