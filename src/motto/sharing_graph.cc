#include "motto/sharing_graph.h"

#include "event/event_type.h"

namespace motto {

std::string_view RecipeKindName(RewriteRecipe::Kind kind) {
  switch (kind) {
    case RewriteRecipe::Kind::kSpanFilter:
      return "span-filter";
    case RewriteRecipe::Kind::kCompositeOperand:
      return "composite-operand";
    case RewriteRecipe::Kind::kMergeOrdered:
      return "merge-ordered";
    case RewriteRecipe::Kind::kOrderFilter:
      return "order-filter";
    case RewriteRecipe::Kind::kFromDisj:
      return "from-disj";
  }
  return "?";
}

std::string SharingNodeKey(const FlatPattern& pattern, Duration window) {
  std::string key = pattern.CanonicalKey();
  key += '@';
  if (pattern.op == PatternOp::kDisj) {
    key += "disj";
  } else {
    key += std::to_string(window);
  }
  return key;
}

std::string SharingGraph::ToString(const EventTypeRegistry& registry) const {
  std::string out;
  for (size_t i = 0; i < nodes.size(); ++i) {
    const SharingNode& node = nodes[i];
    out += (node.terminal ? "T" : "S");
    out += std::to_string(i) + ": " + node.pattern.ToString(registry) +
           " w=" + std::to_string(node.window) +
           " scratch=" + std::to_string(node.scratch_cost) +
           " rate=" + std::to_string(node.output_rate);
    for (const std::string& name : node.query_names) out += " [" + name + "]";
    out += "\n";
  }
  for (const SharingEdge& edge : edges) {
    out += "  " + std::to_string(edge.source) + " -> " +
           std::to_string(edge.target) + " (" +
           std::string(RecipeKindName(edge.recipe.kind)) +
           ", cost=" + std::to_string(edge.cost) + ")\n";
  }
  return out;
}

}  // namespace motto
