#include "motto/sharing_graph.h"

#include "event/event_type.h"

namespace motto {

std::string_view RecipeKindName(RewriteRecipe::Kind kind) {
  switch (kind) {
    case RewriteRecipe::Kind::kSpanFilter:
      return "span-filter";
    case RewriteRecipe::Kind::kCompositeOperand:
      return "composite-operand";
    case RewriteRecipe::Kind::kMergeOrdered:
      return "merge-ordered";
    case RewriteRecipe::Kind::kOrderFilter:
      return "order-filter";
    case RewriteRecipe::Kind::kFromDisj:
      return "from-disj";
  }
  return "?";
}

std::string_view RewriteFamilyName(RewriteFamily family) {
  switch (family) {
    case RewriteFamily::kMst:
      return "MST";
    case RewriteFamily::kDst:
      return "DST";
    case RewriteFamily::kOtt:
      return "OTT";
    case RewriteFamily::kWindow:
      return "WIN";
  }
  return "?";
}

RewriteFamily ClassifyRewrite(const SharingGraph& graph, int32_t source,
                              int32_t target, RewriteRecipe::Kind kind) {
  switch (kind) {
    case RewriteRecipe::Kind::kSpanFilter:
      return RewriteFamily::kWindow;
    case RewriteRecipe::Kind::kOrderFilter:
    case RewriteRecipe::Kind::kFromDisj:
      return RewriteFamily::kOtt;
    case RewriteRecipe::Kind::kCompositeOperand:
    case RewriteRecipe::Kind::kMergeOrdered:
      break;
  }
  const bool both_terminal =
      source >= 0 && static_cast<size_t>(source) < graph.nodes.size() &&
      target >= 0 && static_cast<size_t>(target) < graph.nodes.size() &&
      graph.nodes[source].terminal && graph.nodes[target].terminal;
  return both_terminal ? RewriteFamily::kMst : RewriteFamily::kDst;
}

std::string SharingNodeKey(const FlatPattern& pattern, Duration window) {
  std::string key = pattern.CanonicalKey();
  key += '@';
  if (pattern.op == PatternOp::kDisj) {
    key += "disj";
  } else {
    key += std::to_string(window);
  }
  return key;
}

std::string SharingGraph::ToString(const EventTypeRegistry& registry) const {
  std::string out;
  for (size_t i = 0; i < nodes.size(); ++i) {
    const SharingNode& node = nodes[i];
    out += (node.terminal ? "T" : "S");
    out += std::to_string(i) + ": " + node.pattern.ToString(registry) +
           " w=" + std::to_string(node.window) +
           " scratch=" + std::to_string(node.scratch_cost) +
           " rate=" + std::to_string(node.output_rate);
    for (const std::string& name : node.query_names) out += " [" + name + "]";
    out += "\n";
  }
  for (const SharingEdge& edge : edges) {
    out += "  " + std::to_string(edge.source) + " -> " +
           std::to_string(edge.target) + " (" +
           std::string(RecipeKindName(edge.recipe.kind)) +
           ", cost=" + std::to_string(edge.cost) + ")\n";
  }
  return out;
}

}  // namespace motto
