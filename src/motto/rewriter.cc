#include "motto/rewriter.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"
#include "obs/opt_trace.h"
#include "util/suffix_tree.h"

namespace motto {

namespace {

/// All start positions where `needle` occurs contiguously in `haystack`.
std::vector<size_t> SubstringOccurrences(const SymbolSeq& needle,
                                         const SymbolSeq& haystack) {
  std::vector<size_t> out;
  if (needle.empty() || needle.size() > haystack.size()) return out;
  for (size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    if (std::equal(needle.begin(), needle.end(), haystack.begin() + static_cast<int64_t>(i))) {
      out.push_back(i);
    }
  }
  return out;
}

/// Multiset intersection, ordered by the first sequence.
SymbolSeq MultisetIntersection(const SymbolSeq& a, const SymbolSeq& b) {
  std::unordered_map<int32_t, int> available;
  for (int32_t s : b) ++available[s];
  SymbolSeq out;
  for (int32_t s : a) {
    auto it = available.find(s);
    if (it != available.end() && it->second > 0) {
      --it->second;
      out.push_back(s);
    }
  }
  return out;
}

/// Greedy injection: positions in `haystack` filling each element of
/// `needle` (multiset semantics). Empty when not a sub-multiset.
std::vector<int32_t> InjectionPositions(const SymbolSeq& needle,
                                        const SymbolSeq& haystack) {
  std::vector<bool> used(haystack.size(), false);
  std::vector<int32_t> out;
  for (int32_t symbol : needle) {
    bool found = false;
    for (size_t j = 0; j < haystack.size(); ++j) {
      if (!used[j] && haystack[j] == symbol) {
        used[j] = true;
        out.push_back(static_cast<int32_t>(j));
        found = true;
        break;
      }
    }
    if (!found) return {};
  }
  std::sort(out.begin(), out.end());
  return out;
}

class RewriterImpl {
 public:
  RewriterImpl(const RewriterOptions& options, EventTypeRegistry* registry,
               CompositeCatalog* catalog, CostModel* cost)
      : options_(options),
        registry_(registry),
        catalog_(catalog),
        cost_(cost) {}

  SharingGraph Build(const std::vector<FlatQuery>& queries) {
    for (const FlatQuery& query : queries) {
      AddNode(query.pattern, query.window, /*terminal=*/true, query.name);
    }
    if (options_.enable_dst || options_.lcse_only) {
      size_t initial = graph_.nodes.size();
      for (size_t a = 0; a < initial; ++a) {
        for (size_t b = a + 1; b < initial; ++b) {
          pair_worklist_.emplace_back(static_cast<int32_t>(a),
                                      static_cast<int32_t>(b));
        }
      }
      while (!pair_worklist_.empty() &&
             graph_.nodes.size() < options_.max_nodes) {
        auto [a, b] = pair_worklist_.front();
        pair_worklist_.pop_front();
        ProcessPair(a, b);
      }
    }
    GenerateEdges();
    if (options_.probe != nullptr) {
      obs::RewriterTelemetry& t = options_.probe->rewriter;
      t.graph_nodes = graph_.nodes.size();
      t.graph_edges = graph_.edges.size();
      t.recorded = true;
    }
    return std::move(graph_);
  }

  SharingGraphExtension Extend(SharingGraph* graph,
                               const std::vector<FlatQuery>& added) {
    graph_ = std::move(*graph);
    // Warm-start the composite-rate memo from the existing nodes so edge
    // costs involving old outputs are computed from the same estimates the
    // original build used.
    for (const SharingNode& node : graph_.nodes) {
      composite_rates_[node.output_type] = node.output_rate;
      cost_->SetRate(node.output_type, node.output_rate);
    }
    SharingGraphExtension ext;
    ext.first_new_node = graph_.nodes.size();
    ext.first_new_edge = graph_.edges.size();
    for (const FlatQuery& query : added) {
      std::string key = SharingNodeKey(query.pattern.Canonical(),
                                       query.window);
      auto it = graph_.index.find(key);
      if (it != graph_.index.end()) ext.touched_existing.push_back(it->second);
      AddNode(query.pattern, query.window, /*terminal=*/true, query.name);
    }
    if (options_.enable_dst || options_.lcse_only) {
      size_t size = graph_.nodes.size();
      // Only pairs with a new endpoint: old-old pairs were processed when
      // the graph was built (AddCandidate recursion keeps this invariant
      // for Steiner nodes discovered now).
      for (size_t a = 0; a < ext.first_new_node; ++a) {
        for (size_t b = ext.first_new_node; b < size; ++b) {
          pair_worklist_.emplace_back(static_cast<int32_t>(a),
                                      static_cast<int32_t>(b));
        }
      }
      for (size_t a = ext.first_new_node; a < size; ++a) {
        for (size_t b = a + 1; b < size; ++b) {
          pair_worklist_.emplace_back(static_cast<int32_t>(a),
                                      static_cast<int32_t>(b));
        }
      }
      while (!pair_worklist_.empty() &&
             graph_.nodes.size() < options_.max_nodes) {
        auto [a, b] = pair_worklist_.front();
        pair_worklist_.pop_front();
        ProcessPair(a, b);
      }
    }
    int32_t n = static_cast<int32_t>(graph_.nodes.size());
    int32_t first_new = static_cast<int32_t>(ext.first_new_node);
    for (int32_t u = 0; u < n; ++u) {
      for (int32_t v = 0; v < n; ++v) {
        if (u == v) continue;
        if (u < first_new && v < first_new) continue;  // Already enumerated.
        TryEdges(u, v);
      }
    }
    if (options_.probe != nullptr) {
      obs::RewriterTelemetry& t = options_.probe->rewriter;
      t.graph_nodes = graph_.nodes.size();
      t.graph_edges = graph_.edges.size();
      t.recorded = true;
    }
    *graph = std::move(graph_);
    return ext;
  }

 private:
  bool SameWindowRequired() const { return !options_.enable_windows; }

  double RateOfOperand(EventTypeId type) {
    if (registry_->IsPrimitive(type)) return cost_->RateOf(type);
    auto it = composite_rates_.find(type);
    if (it != composite_rates_.end()) return it->second;
    if (const CompositeCatalog::SelectorInfo* selector =
            catalog_->FindSelector(type)) {
      double rate =
          cost_->RateOf(selector->base) *
          cost_->PredicateSelectivity(selector->base, selector->predicate);
      composite_rates_[type] = rate;
      cost_->SetRate(type, rate);
      return rate;
    }
    const CompositeCatalog::Info* info = catalog_->Find(type);
    MOTTO_CHECK(info != nullptr)
        << "operand references unknown composite " << registry_->NameOf(type);
    OperatorEstimate est = EstimateFlat(info->pattern, info->window);
    composite_rates_[type] = est.output_rate;
    cost_->SetRate(type, est.output_rate);
    return est.output_rate;
  }

  OperatorEstimate EstimateFlat(const FlatPattern& pattern, Duration window) {
    std::vector<double> rates;
    rates.reserve(pattern.operands.size());
    for (EventTypeId t : pattern.operands) rates.push_back(RateOfOperand(t));
    return cost_->EstimateOperator(pattern.op, rates, pattern.negated, window);
  }

  int32_t AddNode(const FlatPattern& raw_pattern, Duration window,
                  bool terminal, const std::string& query_name) {
    FlatPattern pattern = raw_pattern.Canonical();
    std::string key = SharingNodeKey(pattern, window);
    auto it = graph_.index.find(key);
    if (it != graph_.index.end()) {
      SharingNode& node = graph_.nodes[static_cast<size_t>(it->second)];
      node.terminal = node.terminal || terminal;
      if (!query_name.empty()) node.query_names.push_back(query_name);
      return it->second;
    }
    SharingNode node;
    node.pattern = pattern;
    node.window = window;
    node.key = key;
    node.terminal = terminal;
    if (!query_name.empty()) node.query_names.push_back(query_name);
    OperatorEstimate est = EstimateFlat(pattern, window);
    node.scratch_cost = est.cpu_per_second;
    node.output_rate = est.output_rate;
    node.output_type = catalog_->Register(pattern, window, registry_);
    composite_rates_[node.output_type] = est.output_rate;
    cost_->SetRate(node.output_type, est.output_rate);
    int32_t id = static_cast<int32_t>(graph_.nodes.size());
    graph_.nodes.push_back(std::move(node));
    graph_.index.emplace(std::move(key), id);
    return id;
  }

  /// Adds a Steiner candidate and schedules recursive pairing.
  void AddCandidate(PatternOp op, const SymbolSeq& operands, Duration window) {
    if (operands.size() < 2) return;
    if (graph_.nodes.size() >= options_.max_nodes) return;
    FlatPattern sub;
    sub.op = op;
    sub.operands.assign(operands.begin(), operands.end());
    size_t before = graph_.nodes.size();
    int32_t id = AddNode(sub, window, /*terminal=*/false, "");
    if (graph_.nodes.size() == before) return;  // Deduped: already known.
    // Recurse: the new sub-query may share with every same-op node.
    for (int32_t other = 0; other < id; ++other) {
      if (graph_.nodes[static_cast<size_t>(other)].pattern.op == op) {
        pair_worklist_.emplace_back(other, id);
      }
    }
  }

  /// DST search between two nodes (paper §IV-B): identifies interesting
  /// sub-queries via common substrings (suffix tree) and, for SEQ, merged
  /// single-symbol chains shared as subsequences.
  void ProcessPair(int32_t a, int32_t b) {
    const SharingNode& na = graph_.nodes[static_cast<size_t>(a)];
    const SharingNode& nb = graph_.nodes[static_cast<size_t>(b)];
    if (na.pattern.op != nb.pattern.op) return;
    if (SameWindowRequired() && na.window != nb.window) return;
    Duration window = std::max(na.window, nb.window);
    PatternOp op = na.pattern.op;

    if (IsCommutative(op)) {
      // Canonical operand lists are sorted; the shared sub-query is the
      // multiset intersection (order irrelevant for CONJ/DISJ).
      SymbolSeq common = MultisetIntersection(na.pattern.OperandSeq(),
                                              nb.pattern.OperandSeq());
      AddCandidate(op, common, window);
      return;
    }

    const SymbolSeq seq_a = na.pattern.OperandSeq();
    const SymbolSeq seq_b = nb.pattern.OperandSeq();
    GeneralizedSuffixTree tree{SymbolSeq(seq_a), SymbolSeq(seq_b)};
    std::vector<CommonMatch> matches = tree.MaximalCommonMatches();

    if (options_.lcse_only) {
      const CommonMatch* best = nullptr;
      for (const CommonMatch& m : matches) {
        if (m.length >= 2 && (best == nullptr || m.length > best->length)) {
          best = &m;
        }
      }
      if (best != nullptr) {
        SymbolSeq run(seq_a.begin() + static_cast<int64_t>(best->pos_a),
                      seq_a.begin() + static_cast<int64_t>(best->pos_a +
                                                           best->length));
        AddCandidate(op, run, window);
      }
      return;
    }

    // Runs of length >= 2 become sub-queries directly.
    std::vector<CommonMatch> singles;
    for (const CommonMatch& m : matches) {
      if (m.length >= 2) {
        SymbolSeq run(seq_a.begin() + static_cast<int64_t>(m.pos_a),
                      seq_a.begin() + static_cast<int64_t>(m.pos_a + m.length));
        AddCandidate(op, run, window);
      } else {
        singles.push_back(m);
      }
    }
    // Merge length-1 matches into maximal order-consistent chains
    // (paper Example 3: common singles in the same relative order form one
    // "long string"; reverse-order singles split into separate strings).
    std::sort(singles.begin(), singles.end(),
              [](const CommonMatch& x, const CommonMatch& y) {
                return x.pos_a != y.pos_a ? x.pos_a < y.pos_a
                                          : x.pos_b < y.pos_b;
              });
    size_t emitted = 0;
    std::vector<size_t> chain;
    std::function<void(size_t)> extend = [&](size_t last) {
      if (emitted >= options_.max_chains_per_pair) return;
      bool extended = false;
      for (size_t next = last + 1; next < singles.size(); ++next) {
        if (singles[next].pos_a > singles[last].pos_a &&
            singles[next].pos_b > singles[last].pos_b) {
          chain.push_back(next);
          extended = true;
          extend(next);
          chain.pop_back();
        }
      }
      if (!extended && chain.size() >= 2 &&
          emitted < options_.max_chains_per_pair) {
        SymbolSeq merged;
        for (size_t idx : chain) merged.push_back(seq_a[singles[idx].pos_a]);
        AddCandidate(op, merged, window);
        ++emitted;
      }
    };
    for (size_t start = 0; start < singles.size(); ++start) {
      bool is_source = true;
      for (size_t prev = 0; prev < start; ++prev) {
        if (singles[prev].pos_a < singles[start].pos_a &&
            singles[prev].pos_b < singles[start].pos_b) {
          is_source = false;
          break;
        }
      }
      if (!is_source) continue;
      chain.assign(1, start);
      extend(start);
    }
  }

  bool AllPrimitiveDistinct(const FlatPattern& pattern) const {
    std::unordered_set<EventTypeId> seen;
    for (EventTypeId t : pattern.operands) {
      if (!registry_->IsPrimitive(t)) return false;
      if (!seen.insert(t).second) return false;
    }
    return true;
  }

  /// Records one candidate rewrite into the probe; the rewriter's behavior
  /// never depends on it. `cost` is 0 for candidates rejected structurally
  /// before costing.
  void RecordCandidate(int32_t u, int32_t v, RewriteRecipe::Kind kind,
                       obs::EdgeDecision decision, double cost) {
    if (options_.probe == nullptr) return;
    const SharingNode& nu = graph_.nodes[static_cast<size_t>(u)];
    const SharingNode& nv = graph_.nodes[static_cast<size_t>(v)];
    obs::EdgeCandidate candidate;
    candidate.source = u;
    candidate.target = v;
    candidate.source_key = nu.key;
    candidate.target_key = nv.key;
    candidate.family =
        std::string(RewriteFamilyName(ClassifyRewrite(graph_, u, v, kind)));
    candidate.recipe = std::string(RecipeKindName(kind));
    candidate.decision = decision;
    candidate.cost = cost;
    candidate.scratch_cost = nv.scratch_cost;
    options_.probe->rewriter.candidates.push_back(std::move(candidate));
  }

  void AddEdge(int32_t u, int32_t v, RewriteRecipe recipe, double cost) {
    // Keep only clearly profitable rewrites: marginal ones trade modeled
    // savings for real materialization overhead and plan complexity.
    const bool profitable =
        !options_.prune_unprofitable ||
        cost < kProfitMargin * graph_.nodes[static_cast<size_t>(v)].scratch_cost;
    RecordCandidate(u, v, recipe.kind,
                    profitable ? obs::EdgeDecision::kAccepted
                               : obs::EdgeDecision::kRejectedUnprofitable,
                    cost);
    if (!profitable) return;
    graph_.edges.push_back(SharingEdge{u, v, std::move(recipe), cost});
  }

  static constexpr double kProfitMargin = 0.9;

  /// Operand rates of the beneficiary operator with the source composite in
  /// place of the covered positions. Positional: SEQ extension cost depends
  /// on where the composite sits (a suffix composite scans every prefix
  /// partial), so the composite rate is inserted at its sequence position.
  std::vector<double> MergedRates(const SharingNode& u, const SharingNode& v,
                                  const std::vector<int32_t>& covered) {
    std::unordered_set<int32_t> covered_set(covered.begin(), covered.end());
    std::vector<double> rates;
    bool composite_placed = false;
    for (size_t i = 0; i < v.pattern.operands.size(); ++i) {
      if (covered_set.count(static_cast<int32_t>(i)) > 0) {
        if (!composite_placed) {
          rates.push_back(u.output_rate);
          composite_placed = true;
        }
        continue;
      }
      rates.push_back(RateOfOperand(v.pattern.operands[i]));
    }
    return rates;
  }

  void TryEdges(int32_t ui, int32_t vi) {
    const SharingNode& u = graph_.nodes[static_cast<size_t>(ui)];
    const SharingNode& v = graph_.nodes[static_cast<size_t>(vi)];
    obs::OptimizerProbe* probe = options_.probe;
    if (probe != nullptr) ++probe->rewriter.pairs_considered;
    if (!u.pattern.negated.empty()) {  // NEG outputs are not shareable.
      if (probe != nullptr) ++probe->rewriter.negated_source_skips;
      return;
    }
    bool window_ok = u.pattern.op == PatternOp::kDisj
                         ? true
                         : (SameWindowRequired() ? u.window == v.window
                                                 : u.window >= v.window);
    if (!window_ok) {
      if (probe != nullptr) ++probe->rewriter.window_mismatch_skips;
      return;
    }

    // Same pattern, wider source window: span filter (§IV-D).
    if (options_.enable_windows && u.pattern.op != PatternOp::kDisj &&
        u.pattern.op == v.pattern.op && u.pattern == v.pattern &&
        u.window > v.window && v.pattern.negated.empty()) {
      OperatorEstimate filter = cost_->EstimateFilter(
          u.output_rate,
          std::pow(static_cast<double>(v.window) /
                       static_cast<double>(u.window),
                   std::max<double>(
                       1.0,
                       static_cast<double>(v.pattern.operands.size()) - 1.0)));
      RewriteRecipe recipe;
      recipe.kind = RewriteRecipe::Kind::kSpanFilter;
      AddEdge(ui, vi, recipe, filter.cpu_per_second);
      return;  // Identical patterns need no other recipe.
    }

    bool mst_dst_enabled = options_.enable_mst || options_.enable_dst ||
                           options_.lcse_only;
    if (u.pattern.op == v.pattern.op && mst_dst_enabled &&
        u.pattern.operands.size() < v.pattern.operands.size()) {
      // Terminal-to-terminal structural sharing is MST; edges sourced from
      // Steiner sub-queries are DST/LCSE.
      bool is_whole_query_edge = u.terminal && v.terminal;
      bool allowed = is_whole_query_edge
                         ? options_.enable_mst
                         : (options_.enable_dst || options_.lcse_only);
      if (!allowed) return;
      const SymbolSeq needle = u.pattern.OperandSeq();
      const SymbolSeq hay = v.pattern.OperandSeq();
      if (u.pattern.op == PatternOp::kSeq) {
        std::vector<size_t> occurrences = SubstringOccurrences(needle, hay);
        if (!occurrences.empty()) {
          size_t count = std::min(occurrences.size(),
                                  options_.max_occurrence_edges);
          for (size_t o = 0; o < count; ++o) {
            RewriteRecipe recipe;
            recipe.kind = RewriteRecipe::Kind::kCompositeOperand;
            for (size_t k = 0; k < needle.size(); ++k) {
              recipe.covered.push_back(
                  static_cast<int32_t>(occurrences[o] + k));
            }
            double cost =
                cost_->ProcessingCpu(PatternOp::kSeq,
                                     MergedRates(u, v, recipe.covered),
                                     v.window) +
                cost_->EmitCpu(v.output_rate, v.pattern.operands.size());
            AddEdge(ui, vi, recipe, cost);
          }
          for (size_t o = count; o < occurrences.size(); ++o) {
            RecordCandidate(ui, vi, RewriteRecipe::Kind::kCompositeOperand,
                            obs::EdgeDecision::kRejectedOccurrenceCap, 0.0);
          }
        } else if (IsSubsequence(needle, hay) && options_.enable_mst) {
          if (!v.pattern.negated.empty()) {
            RecordCandidate(ui, vi, RewriteRecipe::Kind::kMergeOrdered,
                            obs::EdgeDecision::kRejectedNegatedTarget, 0.0);
          } else if (!AllPrimitiveDistinct(v.pattern)) {
            // Merging through an unordered CONJ intermediate needs the
            // duplicate-type soundness guard too.
            RecordCandidate(ui, vi, RewriteRecipe::Kind::kMergeOrdered,
                            obs::EdgeDecision::kRejectedDuplicateTypes, 0.0);
          } else {
            // Non-substring merge: CONJ(composite & rest) + order filter
            // (paper Example 1).
            std::vector<size_t> positions = SubsequencePositions(needle, hay);
            RewriteRecipe recipe;
            recipe.kind = RewriteRecipe::Kind::kMergeOrdered;
            for (size_t p : positions) {
              recipe.covered.push_back(static_cast<int32_t>(p));
            }
            std::vector<double> rates = MergedRates(u, v, recipe.covered);
            // The unordered CONJ intermediate is estimated from first
            // principles (it can vastly exceed the ordered final output when
            // source matches are tight relative to the window), then the
            // order filter discards all but the correctly-ordered ones.
            double intermediate =
                cost_->OutputRate(PatternOp::kConj, rates, {}, v.window);
            double cost =
                cost_->ProcessingCpu(PatternOp::kConj, rates, v.window) +
                cost_->EmitCpu(intermediate, rates.size()) +
                cost_->EstimateFilter(intermediate, 0.0).cpu_per_second +
                cost_->EmitCpu(v.output_rate, v.pattern.operands.size());
            AddEdge(ui, vi, recipe, cost);
          }
        }
      } else {
        // CONJ / DISJ: multiset containment.
        std::vector<int32_t> covered = InjectionPositions(needle, hay);
        if (!covered.empty()) {
          RewriteRecipe recipe;
          recipe.covered = covered;
          if (u.pattern.op == PatternOp::kDisj) {
            recipe.kind = RewriteRecipe::Kind::kFromDisj;
            double cost = EstimateFlat(v.pattern, v.window).cpu_per_second;
            AddEdge(ui, vi, recipe, cost);
          } else if (AllPrimitiveDistinct(v.pattern)) {
            // The composite replaces the covered CONJ slots but arrives on
            // its own channel, so an event inside it could also fill an
            // uncovered slot of the same type — which the unshared plan
            // forbids (duplicate-type operands share one raw channel and
            // stage each arrival into at most one slot). Distinct operand
            // types make covered and remaining channels disjoint, which is
            // the only case where the rewrite preserves the match set.
            recipe.kind = RewriteRecipe::Kind::kCompositeOperand;
            double cost =
                cost_->ProcessingCpu(PatternOp::kConj,
                                     MergedRates(u, v, covered), v.window) +
                cost_->EmitCpu(v.output_rate, v.pattern.operands.size());
            AddEdge(ui, vi, recipe, cost);
          } else {
            RecordCandidate(ui, vi, RewriteRecipe::Kind::kCompositeOperand,
                            obs::EdgeDecision::kRejectedDuplicateTypes, 0.0);
          }
        }
      }
      return;
    }

    // OTT (§IV-C): transformable operators over the same operand multiset.
    if (options_.enable_ott && u.pattern.op != v.pattern.op) {
      SymbolSeq su = u.pattern.OperandSeq();
      SymbolSeq sv = v.pattern.OperandSeq();
      std::sort(su.begin(), su.end());
      std::sort(sv.begin(), sv.end());
      if (su != sv) return;
      const bool conj_to_seq = u.pattern.op == PatternOp::kConj &&
                               v.pattern.op == PatternOp::kSeq;
      const bool from_disj = u.pattern.op == PatternOp::kDisj &&
                             (v.pattern.op == PatternOp::kConj ||
                              v.pattern.op == PatternOp::kSeq);
      if (!conj_to_seq && !from_disj) return;
      RewriteRecipe::Kind kind = conj_to_seq
                                     ? RewriteRecipe::Kind::kOrderFilter
                                     : RewriteRecipe::Kind::kFromDisj;
      if (!v.pattern.negated.empty()) {
        RecordCandidate(ui, vi, kind,
                        obs::EdgeDecision::kRejectedNegatedTarget, 0.0);
        return;
      }
      if (conj_to_seq) {
        if (!AllPrimitiveDistinct(v.pattern)) {
          // One physical event could satisfy two order-filter slots.
          RecordCandidate(ui, vi, kind,
                          obs::EdgeDecision::kRejectedDuplicateTypes, 0.0);
          return;
        }
        OperatorEstimate filter = cost_->EstimateFilter(
            u.output_rate,
            CostModel::OrderFilterSelectivity(v.pattern.operands.size()));
        double cost = filter.cpu_per_second +
                      cost_->EmitCpu(v.output_rate,
                                     v.pattern.operands.size());
        if (u.window > v.window) {
          cost += cost_->EstimateFilter(filter.output_rate, 1.0).cpu_per_second;
        }
        RewriteRecipe recipe;
        recipe.kind = kind;
        AddEdge(ui, vi, recipe, cost);
      } else {
        RewriteRecipe recipe;
        recipe.kind = kind;
        for (size_t i = 0; i < v.pattern.operands.size(); ++i) {
          recipe.covered.push_back(static_cast<int32_t>(i));
        }
        double cost = EstimateFlat(v.pattern, v.window).cpu_per_second;
        AddEdge(ui, vi, recipe, cost);
      }
    }
  }

  void GenerateEdges() {
    int32_t n = static_cast<int32_t>(graph_.nodes.size());
    for (int32_t u = 0; u < n; ++u) {
      for (int32_t v = 0; v < n; ++v) {
        if (u != v) TryEdges(u, v);
      }
    }
  }

  RewriterOptions options_;
  EventTypeRegistry* registry_;
  CompositeCatalog* catalog_;
  CostModel* cost_;
  SharingGraph graph_;
  std::deque<std::pair<int32_t, int32_t>> pair_worklist_;
  std::unordered_map<EventTypeId, double> composite_rates_;
};

}  // namespace

SharingGraph BuildSharingGraph(const std::vector<FlatQuery>& queries,
                               const RewriterOptions& options,
                               EventTypeRegistry* registry,
                               CompositeCatalog* catalog,
                               CostModel* cost_model) {
  RewriterImpl impl(options, registry, catalog, cost_model);
  return impl.Build(queries);
}

SharingGraphExtension ExtendSharingGraph(SharingGraph* graph,
                                         const std::vector<FlatQuery>& added,
                                         const RewriterOptions& options,
                                         EventTypeRegistry* registry,
                                         CompositeCatalog* catalog,
                                         CostModel* cost_model) {
  RewriterImpl impl(options, registry, catalog, cost_model);
  return impl.Extend(graph, added);
}

OperatorEstimate EstimateFlatPattern(const FlatPattern& pattern,
                                     Duration window,
                                     const CompositeCatalog& catalog,
                                     const EventTypeRegistry& registry,
                                     CostModel* cost_model) {
  std::vector<double> rates;
  rates.reserve(pattern.operands.size());
  for (EventTypeId type : pattern.operands) {
    if (registry.IsPrimitive(type)) {
      rates.push_back(cost_model->RateOf(type));
      continue;
    }
    if (const CompositeCatalog::SelectorInfo* selector =
            catalog.FindSelector(type)) {
      double rate = cost_model->RateOf(type);
      if (rate <= 0.0) {
        rate = cost_model->RateOf(selector->base) *
               cost_model->PredicateSelectivity(selector->base,
                                                selector->predicate);
        cost_model->SetRate(type, rate);
      }
      rates.push_back(rate);
      continue;
    }
    const CompositeCatalog::Info* info = catalog.Find(type);
    MOTTO_CHECK(info != nullptr)
        << "operand references unknown composite " << registry.NameOf(type);
    // Recurse and memoize so repeated lookups are cheap.
    double known = cost_model->RateOf(type);
    if (known <= 0.0) {
      known = EstimateFlatPattern(info->pattern, info->window, catalog,
                                  registry, cost_model)
                  .output_rate;
      cost_model->SetRate(type, known);
    }
    rates.push_back(known);
  }
  return cost_model->EstimateOperator(pattern.op, rates, pattern.negated,
                                      window);
}

}  // namespace motto
