#include "common/check.h"

#include <cstdio>
#include <cstdlib>

namespace motto::internal_check {

void CheckFail(const char* file, int line, const char* condition,
               const std::string& message) {
  std::fprintf(stderr, "%s:%d CHECK failed: %s %s\n", file, line, condition,
               message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace motto::internal_check
