#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

namespace motto {

namespace {

const JsonValue kNullValue;
const std::string kEmptyString;
const std::vector<JsonValue> kEmptyArray;
const std::map<std::string, JsonValue, std::less<>> kEmptyObject;

}  // namespace

/// Recursive-descent parser over a string_view cursor. Depth is bounded so a
/// hostile (or corrupted) document cannot blow the stack.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    MOTTO_RETURN_IF_ERROR(ParseValue(&value, 0));
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& message) const {
    return InvalidArgumentError("json: " + message + " at offset " +
                                std::to_string(pos_));
  }

  void SkipSpace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipSpace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        out->kind_ = JsonValue::Kind::kString;
        return ParseString(&out->string_);
      }
      case 't':
      case 'f':
        return ParseKeyword(c == 't' ? "true" : "false", out);
      case 'n':
        return ParseKeyword("null", out);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseKeyword(std::string_view word, JsonValue* out) {
    if (text_.substr(pos_, word.size()) != word) {
      return Error("bad literal");
    }
    pos_ += word.size();
    if (word == "null") {
      out->kind_ = JsonValue::Kind::kNull;
    } else {
      out->kind_ = JsonValue::Kind::kBool;
      out->bool_ = (word == "true");
    }
    return Status::Ok();
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(value)) {
      return Error("bad number '" + token + "'");
    }
    out->kind_ = JsonValue::Kind::kNumber;
    out->number_ = value;
    return Status::Ok();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("expected '\"'");
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out->push_back(esc);
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs in our own
          // emitters never occur; a lone surrogate encodes as-is).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("bad escape");
      }
    }
    return Error("unterminated string");
  }

  Status ParseArray(JsonValue* out, int depth) {
    Consume('[');
    out->kind_ = JsonValue::Kind::kArray;
    SkipSpace();
    if (Consume(']')) return Status::Ok();
    for (;;) {
      JsonValue element;
      MOTTO_RETURN_IF_ERROR(ParseValue(&element, depth + 1));
      out->array_.push_back(std::move(element));
      SkipSpace();
      if (Consume(']')) return Status::Ok();
      if (!Consume(',')) return Error("expected ',' or ']'");
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    Consume('{');
    out->kind_ = JsonValue::Kind::kObject;
    SkipSpace();
    if (Consume('}')) return Status::Ok();
    for (;;) {
      SkipSpace();
      std::string key;
      MOTTO_RETURN_IF_ERROR(ParseString(&key));
      SkipSpace();
      if (!Consume(':')) return Error("expected ':'");
      JsonValue value;
      MOTTO_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->object_.insert_or_assign(std::move(key), std::move(value));
      SkipSpace();
      if (Consume('}')) return Status::Ok();
      if (!Consume(',')) return Error("expected ',' or '}'");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

Result<JsonValue> JsonValue::Parse(std::string_view text) {
  return JsonParser(text).Parse();
}

bool JsonValue::AsBool(bool fallback) const {
  return kind_ == Kind::kBool ? bool_ : fallback;
}

double JsonValue::AsDouble(double fallback) const {
  return kind_ == Kind::kNumber ? number_ : fallback;
}

int64_t JsonValue::AsInt64(int64_t fallback) const {
  if (kind_ != Kind::kNumber) return fallback;
  return static_cast<int64_t>(number_);
}

const std::string& JsonValue::AsString() const {
  return kind_ == Kind::kString ? string_ : kEmptyString;
}

const JsonValue& JsonValue::operator[](std::string_view key) const {
  if (kind_ == Kind::kObject) {
    auto it = object_.find(key);
    if (it != object_.end()) return it->second;
  }
  return kNullValue;
}

bool JsonValue::Has(std::string_view key) const {
  return kind_ == Kind::kObject && object_.find(key) != object_.end();
}

const std::map<std::string, JsonValue, std::less<>>& JsonValue::object()
    const {
  return kind_ == Kind::kObject ? object_ : kEmptyObject;
}

const std::vector<JsonValue>& JsonValue::array() const {
  return kind_ == Kind::kArray ? array_ : kEmptyArray;
}

}  // namespace motto
