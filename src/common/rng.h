#ifndef MOTTO_COMMON_RNG_H_
#define MOTTO_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace motto {

/// Seeded pseudo-random generator used by data/workload generators and the
/// simulated-annealing solver. All randomness in the project flows through
/// this class so experiments are reproducible from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli draw with success probability `p`.
  bool Bernoulli(double p);

  /// Zipf-distributed rank in [0, n) with exponent `s` (s=0 is uniform).
  /// Rank 0 is the most frequent. Uses inverse-CDF over precomputed weights.
  int32_t Zipf(int32_t n, double s);

  /// Exponentially distributed interarrival time with the given mean.
  double Exponential(double mean);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Uniform(0, static_cast<int64_t>(i) - 1));
      std::swap(items[i - 1], items[j]);
    }
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  // Cached Zipf CDF keyed by (n, s) of the last call; generators typically
  // draw many ranks from one distribution.
  int32_t zipf_n_ = -1;
  double zipf_s_ = -1.0;
  std::vector<double> zipf_cdf_;
};

}  // namespace motto

#endif  // MOTTO_COMMON_RNG_H_
