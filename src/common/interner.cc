#include "common/interner.h"

#include "common/check.h"

namespace motto {

int32_t StringInterner::Intern(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  int32_t id = static_cast<int32_t>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

int32_t StringInterner::Find(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  return it == ids_.end() ? -1 : it->second;
}

const std::string& StringInterner::NameOf(int32_t id) const {
  MOTTO_CHECK(id >= 0 && id < size()) << "bad interned id " << id;
  return names_[static_cast<size_t>(id)];
}

}  // namespace motto
