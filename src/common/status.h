#ifndef MOTTO_COMMON_STATUS_H_
#define MOTTO_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace motto {

/// Canonical error codes, a small subset of the usual Google taxonomy.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kDeadlineExceeded,
  kUnimplemented,
  kInternal,
};

/// Returns a short human-readable name for `code`, e.g. "InvalidArgument".
std::string_view StatusCodeName(StatusCode code);

/// Value type describing the outcome of an operation that may fail.
///
/// The library is built without exceptions; fallible operations return a
/// `Status` (or `Result<T>`, see result.h). An OK status carries no message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Convenience constructors mirroring the code names.
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status OutOfRangeError(std::string message);
Status DeadlineExceededError(std::string message);
Status UnimplementedError(std::string message);
Status InternalError(std::string message);

}  // namespace motto

/// Propagates a non-OK status to the caller.
#define MOTTO_RETURN_IF_ERROR(expr)                   \
  do {                                                \
    ::motto::Status motto_status_tmp_ = (expr);       \
    if (!motto_status_tmp_.ok()) return motto_status_tmp_; \
  } while (false)

#endif  // MOTTO_COMMON_STATUS_H_
