#ifndef MOTTO_COMMON_TIME_H_
#define MOTTO_COMMON_TIME_H_

#include <cstdint>

namespace motto {

/// Logical event time in microseconds since stream start.
using Timestamp = int64_t;

/// Time span in microseconds (window constraints, filters).
using Duration = int64_t;

inline constexpr Duration kMicrosPerMilli = 1000;
inline constexpr Duration kMicrosPerSecond = 1000 * kMicrosPerMilli;
inline constexpr Duration kMicrosPerMinute = 60 * kMicrosPerSecond;

constexpr Duration Millis(int64_t n) { return n * kMicrosPerMilli; }
constexpr Duration Seconds(int64_t n) { return n * kMicrosPerSecond; }
constexpr Duration Minutes(int64_t n) { return n * kMicrosPerMinute; }

}  // namespace motto

#endif  // MOTTO_COMMON_TIME_H_
