#include "common/parse.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <string>

namespace motto {

namespace {

std::string_view StripSpace(std::string_view text) {
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

Status BadNumber(std::string_view what, std::string_view text) {
  return InvalidArgumentError(std::string(what) + " '" + std::string(text) +
                              "'");
}

}  // namespace

Result<double> ParseDouble(std::string_view text) {
  std::string_view trimmed = StripSpace(text);
  if (trimmed.empty()) return BadNumber("empty number", text);
  // strtod needs a NUL terminator; string_views into larger buffers (CSV
  // fields, lexer slices) do not have one.
  std::string buffer(trimmed);
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(buffer.c_str(), &end);
  if (end != buffer.c_str() + buffer.size()) {
    return BadNumber("malformed number", text);
  }
  if (errno == ERANGE || !std::isfinite(value)) {
    return BadNumber("number out of range", text);
  }
  return value;
}

Result<int64_t> ParseInt64(std::string_view text) {
  std::string_view trimmed = StripSpace(text);
  if (trimmed.empty()) return BadNumber("empty integer", text);
  std::string buffer(trimmed);
  errno = 0;
  char* end = nullptr;
  int64_t value = std::strtoll(buffer.c_str(), &end, 10);
  if (end != buffer.c_str() + buffer.size()) {
    return BadNumber("malformed integer", text);
  }
  if (errno == ERANGE) return BadNumber("integer out of range", text);
  return value;
}

}  // namespace motto
