#ifndef MOTTO_COMMON_RESULT_H_
#define MOTTO_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/check.h"
#include "common/status.h"

namespace motto {

/// Holds either a value of type `T` or a non-OK `Status` explaining why the
/// value is absent. Analogous to absl::StatusOr<T>.
template <typename T>
class Result {
 public:
  /// Implicit from Status so `return InvalidArgumentError(...)` works.
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {
    MOTTO_CHECK(!status_.ok()) << "Result constructed from OK status";
  }
  /// Implicit from T so `return value;` works.
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(T value) : value_(std::move(value)) {}

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    MOTTO_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T& value() & {
    MOTTO_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T&& value() && {
    MOTTO_CHECK(ok()) << status_.ToString();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace motto

/// Evaluates `rexpr` (a Result<T>); on error returns the Status, otherwise
/// move-assigns the value into `lhs` (which may be a declaration).
#define MOTTO_ASSIGN_OR_RETURN(lhs, rexpr)                      \
  MOTTO_ASSIGN_OR_RETURN_IMPL_(                                 \
      MOTTO_RESULT_CONCAT_(motto_result_, __LINE__), lhs, rexpr)

#define MOTTO_ASSIGN_OR_RETURN_IMPL_(result, lhs, rexpr) \
  auto result = (rexpr);                                 \
  if (!result.ok()) return result.status();              \
  lhs = std::move(result).value()

#define MOTTO_RESULT_CONCAT_(x, y) MOTTO_RESULT_CONCAT_IMPL_(x, y)
#define MOTTO_RESULT_CONCAT_IMPL_(x, y) x##y

#endif  // MOTTO_COMMON_RESULT_H_
