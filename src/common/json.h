#ifndef MOTTO_COMMON_JSON_H_
#define MOTTO_COMMON_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace motto {

/// Minimal JSON document reader for the telemetry the system itself emits
/// (`/statusz`, the stats log, metrics files): `motto top` and the tests
/// consume those documents without shelling out to python. Full RFC 8259
/// grammar (objects, arrays, strings with escapes, numbers, true/false/
/// null); numbers are held as double, which is exact for every counter the
/// registry can realistically emit (< 2^53).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses one JSON document; trailing non-whitespace is an error.
  static Result<JsonValue> Parse(std::string_view text);

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  /// Typed accessors; the fallback is returned on any kind mismatch, so
  /// readers degrade instead of crashing on a schema drift.
  bool AsBool(bool fallback = false) const;
  double AsDouble(double fallback = 0.0) const;
  int64_t AsInt64(int64_t fallback = 0) const;
  const std::string& AsString() const;  ///< Empty on mismatch.

  /// Object member by key, or a shared null value when absent/not an
  /// object. Chains safely: doc["a"]["b"].AsDouble().
  const JsonValue& operator[](std::string_view key) const;
  bool Has(std::string_view key) const;
  const std::map<std::string, JsonValue, std::less<>>& object() const;

  /// Array elements (empty on mismatch).
  const std::vector<JsonValue>& array() const;
  size_t size() const { return array().size(); }

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue, std::less<>> object_;
};

}  // namespace motto

#endif  // MOTTO_COMMON_JSON_H_
