#ifndef MOTTO_COMMON_CHECK_H_
#define MOTTO_COMMON_CHECK_H_

#include <sstream>
#include <string>

namespace motto::internal_check {

/// Prints `file:line CHECK failed: condition message` to stderr and aborts.
[[noreturn]] void CheckFail(const char* file, int line, const char* condition,
                            const std::string& message);

/// Stream-collecting helper so call sites can write
/// `MOTTO_CHECK(x) << "context " << v;`.
class CheckStream {
 public:
  CheckStream(const char* file, int line, const char* condition)
      : file_(file), line_(line), condition_(condition) {}
  [[noreturn]] ~CheckStream() { CheckFail(file_, line_, condition_, stream_.str()); }

  template <typename T>
  CheckStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* condition_;
  std::ostringstream stream_;
};

}  // namespace motto::internal_check

/// Aborts the process with a diagnostic if `condition` is false. Used for
/// programming-error invariants (never for user input; that returns Status).
#define MOTTO_CHECK(condition)                                         \
  while (!(condition))                                                 \
  ::motto::internal_check::CheckStream(__FILE__, __LINE__, #condition)

#define MOTTO_CHECK_EQ(a, b) MOTTO_CHECK((a) == (b))
#define MOTTO_CHECK_NE(a, b) MOTTO_CHECK((a) != (b))
#define MOTTO_CHECK_LT(a, b) MOTTO_CHECK((a) < (b))
#define MOTTO_CHECK_LE(a, b) MOTTO_CHECK((a) <= (b))
#define MOTTO_CHECK_GT(a, b) MOTTO_CHECK((a) > (b))
#define MOTTO_CHECK_GE(a, b) MOTTO_CHECK((a) >= (b))

#ifndef NDEBUG
#define MOTTO_DCHECK(condition) MOTTO_CHECK(condition)
#else
#define MOTTO_DCHECK(condition) \
  while (false && !(condition)) \
  ::motto::internal_check::CheckStream(__FILE__, __LINE__, #condition)
#endif

#endif  // MOTTO_COMMON_CHECK_H_
