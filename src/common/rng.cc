#include "common/rng.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace motto {

int64_t Rng::Uniform(int64_t lo, int64_t hi) {
  MOTTO_CHECK_LE(lo, hi);
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::NextDouble() {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

int32_t Rng::Zipf(int32_t n, double s) {
  MOTTO_CHECK_GT(n, 0);
  if (zipf_n_ != n || zipf_s_ != s) {
    zipf_n_ = n;
    zipf_s_ = s;
    zipf_cdf_.resize(static_cast<size_t>(n));
    double total = 0.0;
    for (int32_t i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), s);
      zipf_cdf_[static_cast<size_t>(i)] = total;
    }
    for (double& v : zipf_cdf_) v /= total;
  }
  double u = NextDouble();
  auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  if (it == zipf_cdf_.end()) --it;
  return static_cast<int32_t>(it - zipf_cdf_.begin());
}

double Rng::Exponential(double mean) {
  MOTTO_CHECK_GT(mean, 0.0);
  std::exponential_distribution<double> dist(1.0 / mean);
  return dist(engine_);
}

}  // namespace motto
