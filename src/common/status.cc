#include "common/status.h"

namespace motto {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status AlreadyExistsError(std::string message) {
  return Status(StatusCode::kAlreadyExists, std::move(message));
}
Status OutOfRangeError(std::string message) {
  return Status(StatusCode::kOutOfRange, std::move(message));
}
Status DeadlineExceededError(std::string message) {
  return Status(StatusCode::kDeadlineExceeded, std::move(message));
}
Status UnimplementedError(std::string message) {
  return Status(StatusCode::kUnimplemented, std::move(message));
}
Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}

}  // namespace motto
