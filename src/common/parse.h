#ifndef MOTTO_COMMON_PARSE_H_
#define MOTTO_COMMON_PARSE_H_

#include <cstdint>
#include <string_view>

#include "common/result.h"

namespace motto {

/// Checked replacements for bare std::strtod / std::strtoll, which silently
/// return 0 on garbage and HUGE_VAL/saturation on overflow when called with a
/// null endptr and no errno check. Both helpers require the whole string
/// (minus surrounding ASCII whitespace) to be consumed, reject empty input,
/// and reject out-of-range values, so "12x3", "", "1e999999" and a 30-digit
/// integer all surface as errors instead of wrong numbers.

/// Parses a finite double (strtod grammar: decimal/exponent/hex forms).
Result<double> ParseDouble(std::string_view text);

/// Parses a base-10 signed 64-bit integer.
Result<int64_t> ParseInt64(std::string_view text);

}  // namespace motto

#endif  // MOTTO_COMMON_PARSE_H_
