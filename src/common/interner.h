#ifndef MOTTO_COMMON_INTERNER_H_
#define MOTTO_COMMON_INTERNER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace motto {

/// Bidirectional mapping between strings and dense int32 ids, used to intern
/// event type names. Ids are assigned in insertion order starting at 0.
/// Not thread-safe; each workload owns its interner (via EventTypeRegistry).
class StringInterner {
 public:
  StringInterner() = default;
  StringInterner(const StringInterner&) = default;
  StringInterner& operator=(const StringInterner&) = default;

  /// Returns the id for `name`, assigning a fresh one on first sight.
  int32_t Intern(std::string_view name);

  /// Returns the id for `name`, or -1 if it was never interned.
  int32_t Find(std::string_view name) const;

  /// Returns the string for `id`; id must be valid.
  const std::string& NameOf(int32_t id) const;

  int32_t size() const { return static_cast<int32_t>(names_.size()); }

 private:
  std::unordered_map<std::string, int32_t> ids_;
  std::vector<std::string> names_;
};

}  // namespace motto

#endif  // MOTTO_COMMON_INTERNER_H_
